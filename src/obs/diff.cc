#include "obs/diff.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>

#include "exp/json.hh"

namespace g5r::obs {

namespace {

/// Effective state of one recording "as of the end of" a merged interval
/// index: cumulative digests carry across intervals the run left empty.
struct Eff {
    std::uint64_t cumDispatch = kDigestSeed;
    std::uint64_t cumPacket = kDigestSeed;
    const IntervalRecord* rec = nullptr;  ///< Non-null when present at this index.
};

/// Per merged index, the effective state of both sides.
struct MergedRow {
    std::uint64_t index = 0;
    Eff a, b;
};

std::vector<MergedRow> mergeIntervals(const Recording& a, const Recording& b) {
    std::vector<MergedRow> rows;
    rows.reserve(a.intervals.size() + b.intervals.size());
    std::size_t ia = 0, ib = 0;
    Eff effA, effB;
    while (ia < a.intervals.size() || ib < b.intervals.size()) {
        const std::uint64_t nextA =
            ia < a.intervals.size() ? a.intervals[ia].index : UINT64_MAX;
        const std::uint64_t nextB =
            ib < b.intervals.size() ? b.intervals[ib].index : UINT64_MAX;
        const std::uint64_t idx = std::min(nextA, nextB);
        MergedRow row;
        row.index = idx;
        if (nextA == idx) {
            effA.cumDispatch = a.intervals[ia].cumDispatchDigest;
            effA.cumPacket = a.intervals[ia].cumPacketDigest;
            effA.rec = &a.intervals[ia];
            ++ia;
        } else {
            effA.rec = nullptr;
        }
        if (nextB == idx) {
            effB.cumDispatch = b.intervals[ib].cumDispatchDigest;
            effB.cumPacket = b.intervals[ib].cumPacketDigest;
            effB.rec = &b.intervals[ib];
            ++ib;
        } else {
            effB.rec = nullptr;
        }
        row.a = effA;
        row.b = effB;
        rows.push_back(row);
    }
    return rows;
}

bool prefixMatches(const MergedRow& row, DiffLane lane) {
    if (row.a.cumPacket != row.b.cumPacket) return false;
    if (lane == DiffLane::kPacketsOnly) return true;
    return row.a.cumDispatch == row.b.cumDispatch;
}

std::string describeInterval(const IntervalRecord* rec) {
    if (rec == nullptr) return "no activity recorded";
    std::ostringstream os;
    os << rec->dispatchCount << " dispatches, " << rec->packetCount << " packet ops";
    return os.str();
}

std::string formatBlackBoxEntry(const Recording& r, const BlackBoxEntry& e) {
    std::ostringstream os;
    os << "#" << e.seq << " t=" << e.tick << ' '
       << (e.kind == 'D' ? "dispatch" : "packet  ") << " [" << r.objectName(e.slot) << "] "
       << e.text;
    return os.str();
}

std::vector<std::string> neighborhood(const Recording& r, Tick lo, Tick hi) {
    std::vector<std::string> out;
    for (const BlackBoxEntry& e : r.blackBox) {
        if (e.tick < lo || e.tick >= hi) continue;
        out.push_back(formatBlackBoxEntry(r, e));
    }
    if (out.empty()) {
        if (r.blackBox.empty()) {
            out.push_back("(black box empty)");
        } else {
            std::ostringstream os;
            os << "(black box covers ticks " << r.blackBox.front().tick << ".."
               << r.blackBox.back().tick << ", outside the divergent window)";
            out.push_back(os.str());
        }
    }
    return out;
}

/// Pick the SimObject that owns the divergence inside one interval: among
/// objects whose (count, digest) rows differ between the sides — or that
/// dispatched on one side only — the one whose first dispatch in the
/// interval is earliest. Localization granularity is the interval width;
/// record with a small GEM5RTL_RECORD_INTERVAL for finer attribution.
std::string divergentObject(const Recording& a, const Recording& b,
                            const IntervalRecord* ra, const IntervalRecord* rb) {
    struct Side {
        const ObjEntry* a = nullptr;
        const ObjEntry* b = nullptr;
    };
    std::map<std::string, Side> byName;
    if (ra != nullptr) {
        for (const ObjEntry& e : ra->objects) byName[a.objectName(e.slot)].a = &e;
    }
    if (rb != nullptr) {
        for (const ObjEntry& e : rb->objects) byName[b.objectName(e.slot)].b = &e;
    }
    std::string best;
    Tick bestTick = 0;
    bool haveBest = false;
    for (const auto& [name, side] : byName) {
        const bool differs =
            side.a == nullptr || side.b == nullptr || side.a->count != side.b->count ||
            side.a->digest != side.b->digest;
        if (!differs) continue;
        Tick first = UINT64_MAX;
        if (side.a != nullptr) first = std::min(first, side.a->firstTick);
        if (side.b != nullptr) first = std::min(first, side.b->firstTick);
        if (!haveBest || first < bestTick) {
            haveBest = true;
            bestTick = first;
            best = name;
        }
    }
    return best;
}

}  // namespace

DivergenceReport findFirstDivergence(const Recording& a, const Recording& b, DiffLane lane) {
    DivergenceReport rep;
    if (a.intervalTicks != b.intervalTicks) {
        rep.comparable = false;
        std::ostringstream os;
        os << "interval widths differ (" << a.intervalTicks << " vs " << b.intervalTicks
           << " ticks); re-record with matching GEM5RTL_RECORD_INTERVAL";
        rep.error = os.str();
        return rep;
    }
    const Tick width = a.intervalTicks;

    const std::vector<MergedRow> rows = mergeIntervals(a, b);

    // Cumulative digests make "runs agree through row k" monotone in k, so
    // the first divergent interval is found with a binary search, not a
    // linear replay of both recordings.
    std::size_t lo = 0, hi = rows.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (prefixMatches(rows[mid], lane)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }

    if (lo == rows.size()) {
        // Every interval matches; the runs can still disagree past the last
        // digest (final tick, a tail shorter than one interval).
        const bool endDiffers =
            a.hasEnd != b.hasEnd ||
            (a.hasEnd && (a.finalTick != b.finalTick || a.totalPackets != b.totalPackets ||
                          a.finalPacketDigest != b.finalPacketDigest ||
                          (lane == DiffLane::kBoth &&
                           (a.totalDispatches != b.totalDispatches ||
                            a.finalDispatchDigest != b.finalDispatchDigest))));
        if (!endDiffers) return rep;  // Identical.
        rep.diverged = true;
        rep.lane = "end";
        if (!rows.empty()) {
            rep.intervalIndex = rows.back().index;
            rep.startTick = static_cast<Tick>(rep.intervalIndex) * width;
            rep.endTick = rep.startTick + width;
        }
        std::ostringstream os;
        if (a.hasEnd != b.hasEnd) {
            os << "one recording has no end record (crashed or still-running run): A "
               << (a.hasEnd ? "complete" : "truncated") << ", B "
               << (b.hasEnd ? "complete" : "truncated");
        } else {
            os << "all intervals match but run tails differ: finalTick " << a.finalTick
               << " vs " << b.finalTick << ", dispatches " << a.totalDispatches << " vs "
               << b.totalDispatches << ", packets " << a.totalPackets << " vs "
               << b.totalPackets;
        }
        rep.detail = os.str();
        rep.neighborhoodA = neighborhood(a, 0, UINT64_MAX);
        rep.neighborhoodB = neighborhood(b, 0, UINT64_MAX);
        return rep;
    }

    const MergedRow& row = rows[lo];
    rep.diverged = true;
    rep.intervalIndex = row.index;
    rep.startTick = static_cast<Tick>(row.index) * width;
    rep.endTick = rep.startTick + width;
    const bool packetDiffers = row.a.cumPacket != row.b.cumPacket;
    const bool dispatchDiffers =
        lane == DiffLane::kBoth && row.a.cumDispatch != row.b.cumDispatch;
    rep.lane = dispatchDiffers && !packetDiffers ? "dispatch"
               : packetDiffers && !dispatchDiffers ? "packet"
                                                   : "dispatch+packet";
    rep.objectName = divergentObject(a, b, row.a.rec, row.b.rec);
    std::ostringstream os;
    os << "A: " << describeInterval(row.a.rec) << " | B: " << describeInterval(row.b.rec);
    rep.detail = os.str();

    const Tick winLo = rep.startTick > width ? rep.startTick - width : 0;
    const Tick winHi = rep.endTick + width;
    rep.neighborhoodA = neighborhood(a, winLo, winHi);
    rep.neighborhoodB = neighborhood(b, winLo, winHi);
    return rep;
}

std::string formatDivergenceReport(const DivergenceReport& rep, const std::string& nameA,
                                   const std::string& nameB) {
    std::ostringstream os;
    if (!rep.comparable) {
        os << "g5r-diff: recordings not comparable: " << rep.error << '\n';
        return os.str();
    }
    if (!rep.diverged) {
        os << "g5r-diff: recordings identical\n";
        return os.str();
    }
    os << "g5r-diff: first divergence in " << rep.lane << " lane at interval "
       << rep.intervalIndex << " (ticks [" << rep.startTick << ", " << rep.endTick << "))\n";
    if (!rep.objectName.empty()) os << "  owning SimObject: " << rep.objectName << '\n';
    if (!rep.detail.empty()) os << "  " << rep.detail << '\n';
    os << "  event neighborhood A (" << nameA << "):\n";
    for (const std::string& line : rep.neighborhoodA) os << "    " << line << '\n';
    os << "  event neighborhood B (" << nameB << "):\n";
    for (const std::string& line : rep.neighborhoodB) os << "    " << line << '\n';
    return os.str();
}

std::string divergenceReportJson(const DivergenceReport& rep, const std::string& nameA,
                                 const std::string& nameB) {
    exp::Json doc = exp::Json::object();
    doc["a"] = nameA;
    doc["b"] = nameB;
    doc["comparable"] = rep.comparable;
    doc["diverged"] = rep.diverged;
    if (!rep.comparable) {
        doc["error"] = rep.error;
        return doc.dump();
    }
    if (rep.diverged) {
        doc["lane"] = rep.lane;
        doc["intervalIndex"] = rep.intervalIndex;
        doc["startTick"] = static_cast<std::uint64_t>(rep.startTick);
        doc["endTick"] = static_cast<std::uint64_t>(rep.endTick);
        doc["objectName"] = rep.objectName;
        doc["detail"] = rep.detail;
        exp::Json na = exp::Json::array();
        for (const std::string& line : rep.neighborhoodA) na.push(line);
        doc["neighborhoodA"] = std::move(na);
        exp::Json nb = exp::Json::array();
        for (const std::string& line : rep.neighborhoodB) nb.push(line);
        doc["neighborhoodB"] = std::move(nb);
    }
    return doc.dump();
}

DivergenceReport diffRecordingFiles(const std::string& pathA, const std::string& pathB,
                                    DiffLane lane) {
    try {
        const Recording a = Recording::load(pathA);
        const Recording b = Recording::load(pathB);
        return findFirstDivergence(a, b, lane);
    } catch (const std::exception& e) {
        DivergenceReport rep;
        rep.comparable = false;
        rep.error = e.what();
        return rep;
    }
}

}  // namespace g5r::obs
