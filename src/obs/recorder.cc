#include "obs/recorder.hh"

#include <iomanip>
#include <sstream>

namespace g5r::obs {

namespace {

std::string hex16(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

std::string packetText(char op, std::uint64_t id, std::uint64_t addr, unsigned size,
                       bool isRead) {
    std::ostringstream os;
    switch (op) {
    case 'I':
        os << "issue id=" << id << " addr=0x" << std::hex << addr << std::dec
           << " size=" << size << (isRead ? " read" : " write");
        break;
    case 'F': os << "forward id=" << id; break;
    case 'R': os << "respond id=" << id; break;
    default: os << "complete id=" << id; break;
    }
    return os.str();
}

}  // namespace

Recorder::Recorder(std::string path, std::string runLabel, Tick intervalTicks,
                   unsigned blackBoxDepth)
    : path_(std::move(path)),
      runLabel_(std::move(runLabel)),
      out_(path_),
      interval_(intervalTicks > 0 ? intervalTicks : 1),
      ringDepth_(blackBoxDepth > 0 ? blackBoxDepth : 1) {
    if (out_) {
        out_ << "g5rec 1\n";
        out_ << "run " << runLabel_ << '\n';
        out_ << "interval " << interval_ << '\n';
    }
    // The hook dumps the ring and salvages the partly-written sidecar; it
    // lives exactly as long as the recorder (thread-local, one run per
    // thread), so a clean finish() unregisters before destruction.
    panicHook_ = std::make_unique<PanicHookScope>([this] {
        logRawLine(blackBoxReport());
        if (out_) out_.flush();
    });
}

Recorder::~Recorder() { finish(lastTick_); }

void Recorder::rollTo(Tick when) {
    if (when > lastTick_) lastTick_ = when;
    const std::uint64_t idx = when / interval_;
    if (intervalOpen_ && idx == intervalIndex_) return;
    if (intervalOpen_) flushInterval();
    intervalOpen_ = true;
    intervalIndex_ = idx;
    intervalStart_ = static_cast<Tick>(idx) * interval_;
    ivDispatchCount_ = 0;
    ivDispatchDigest_ = kDigestSeed;
    ivPacketCount_ = 0;
    ivPacketDigest_ = kDigestSeed;
    for (auto& acc : ivObjects_) acc = ObjAcc{};
}

void Recorder::flushInterval() {
    if (!intervalOpen_ || (ivDispatchCount_ == 0 && ivPacketCount_ == 0)) return;
    if (out_) {
        out_ << "iv " << intervalIndex_ << ' ' << intervalStart_ << ' ' << ivDispatchCount_
             << ' ' << hex16(ivDispatchDigest_) << ' ' << hex16(cumDispatchDigest_) << ' '
             << ivPacketCount_ << ' ' << hex16(ivPacketDigest_) << ' '
             << hex16(cumPacketDigest_) << '\n';
        for (std::size_t slot = 0; slot < ivObjects_.size(); ++slot) {
            const ObjAcc& acc = ivObjects_[slot];
            if (acc.count == 0) continue;
            out_ << "ob " << slot << ' ' << acc.count << ' ' << hex16(acc.digest) << ' '
                 << acc.firstTick << '\n';
        }
        // One interval is the crash-loss unit: flush so a dead run's sidecar
        // still diffs up to its last closed interval.
        out_.flush();
    }
}

void Recorder::recordDispatch(Tick when, int slot, const std::string& label,
                              std::uint64_t labelHash) {
    rollTo(when);
    ++ivDispatchCount_;
    ++totalDispatches_;
    ivDispatchDigest_ = digestU64(digestU64(ivDispatchDigest_, labelHash), when);
    cumDispatchDigest_ = digestU64(digestU64(cumDispatchDigest_, labelHash), when);

    if (slot >= 0) {
        if (static_cast<std::size_t>(slot) >= ivObjects_.size()) {
            ivObjects_.resize(static_cast<std::size_t>(slot) + 1);
        }
        ObjAcc& acc = ivObjects_[static_cast<std::size_t>(slot)];
        if (acc.count == 0) acc.firstTick = when;
        ++acc.count;
        acc.digest = digestU64(digestU64(acc.digest, labelHash), when);
    }
    pushBlackBox('D', when, slot, label);
}

void Recorder::recordPacket(Tick when, int slot, char op, std::uint64_t id,
                            std::uint64_t addr, unsigned size, bool isRead) {
    rollTo(when);
    ++ivPacketCount_;
    ++totalPackets_;
    std::uint64_t key = digestByte(kDigestSeed, static_cast<unsigned char>(op));
    key = digestU64(key, id);
    if (op == 'I') {
        key = digestU64(key, addr);
        key = digestU64(key, size);
        key = digestByte(key, isRead ? 1 : 0);
    }
    ivPacketDigest_ = digestU64(digestU64(ivPacketDigest_, key), when);
    cumPacketDigest_ = digestU64(digestU64(cumPacketDigest_, key), when);
    pushBlackBox('P', when, slot, packetText(op, id, addr, size, isRead));
}

void Recorder::noteObjectName(int slot, const std::string& name) {
    if (slot < 0) return;
    if (static_cast<std::size_t>(slot) >= objectNames_.size()) {
        objectNames_.resize(static_cast<std::size_t>(slot) + 1);
    }
    objectNames_[static_cast<std::size_t>(slot)] = name;
}

void Recorder::pushBlackBox(char kind, Tick tick, int slot, std::string text) {
    BlackBoxEntry e;
    e.seq = ++ringSeq_;
    e.kind = kind;
    e.tick = tick;
    e.slot = slot;
    e.text = std::move(text);
    if (ring_.size() < ringDepth_) {
        ring_.push_back(std::move(e));
    } else {
        ring_[ringNext_] = std::move(e);
        ringNext_ = (ringNext_ + 1) % ring_.size();
    }
}

void Recorder::finish(Tick finalTick) {
    if (finished_) return;
    finished_ = true;
    panicHook_.reset();
    if (finalTick > lastTick_) lastTick_ = finalTick;
    flushInterval();
    intervalOpen_ = false;
    if (out_) {
        for (std::size_t slot = 0; slot < objectNames_.size(); ++slot) {
            if (objectNames_[slot].empty()) continue;
            out_ << "obj " << slot << ' ' << objectNames_[slot] << '\n';
        }
        const std::size_t n = ring_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const BlackBoxEntry& e = ring_[(ringNext_ + i) % n];
            out_ << "bb " << e.seq << ' ' << e.kind << ' ' << e.tick << ' ' << e.slot << ' '
                 << e.text << '\n';
        }
        out_ << "end " << lastTick_ << ' ' << totalDispatches_ << ' ' << totalPackets_ << ' '
             << hex16(cumDispatchDigest_) << ' ' << hex16(cumPacketDigest_) << '\n';
        out_.close();
    }
}

std::string Recorder::blackBoxReport() const {
    std::ostringstream os;
    os << "=== black box";
    if (!runLabel_.empty()) os << " [" << runLabel_ << ']';
    os << ": last " << ring_.size() << " of " << ringSeq_ << " recorded events ===\n";
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const BlackBoxEntry& e = ring_[(ringNext_ + i) % n];
        os << "  #" << e.seq << " t=" << e.tick << ' ' << (e.kind == 'D' ? "dispatch" : "packet");
        const std::string* name = nullptr;
        if (e.slot >= 0 && static_cast<std::size_t>(e.slot) < objectNames_.size() &&
            !objectNames_[static_cast<std::size_t>(e.slot)].empty()) {
            name = &objectNames_[static_cast<std::size_t>(e.slot)];
        }
        if (name != nullptr) os << " [" << *name << ']';
        os << ' ' << e.text << '\n';
    }
    os << "=== end black box ===\n";
    return os.str();
}

}  // namespace g5r::obs
