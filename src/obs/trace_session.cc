#include "obs/trace_session.hh"

#include <cstdio>

namespace g5r::obs {

namespace {

constexpr int kPid = 1;  // One simulated system per trace file.

/// Fixed-point microseconds: Perfetto wants monotone numeric ts values;
/// three decimals keeps nanosecond resolution without float noise.
void appendUs(std::string& out, double us) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    out += buf;
}

void appendDouble(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
    out_.open(path_, std::ios::out | std::ios::trunc);
    if (!out_.good()) return;  // ok_ stays false; every emit is a no-op.
    out_ << "{\"traceEvents\":[\n";
    ok_ = out_.good();
}

TraceSession::~TraceSession() { finish(); }

void TraceSession::appendEscaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void TraceSession::emit(const std::string& line) {
    if (!ok_ || finished_) return;
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << line;
    if (!out_.good()) ok_ = false;  // Disk full etc: stop, don't throw.
    ++events_;
}

void TraceSession::completeEvent(int tid, std::string_view name, std::string_view cat,
                                 double tsUs, double durUs, Tick tick) {
    if (!ok_ || finished_) return;
    std::string line;
    line.reserve(128 + name.size());
    line += "{\"ph\":\"X\",\"pid\":";
    line += std::to_string(kPid);
    line += ",\"tid\":";
    line += std::to_string(tid);
    line += ",\"ts\":";
    appendUs(line, tsUs);
    line += ",\"dur\":";
    appendUs(line, durUs);
    line += ",\"name\":";
    appendEscaped(line, name);
    line += ",\"cat\":";
    appendEscaped(line, cat);
    line += ",\"args\":{\"tick\":";
    line += std::to_string(tick);
    line += "}}";
    emit(line);
    if (ok_) ++spans_;
}

void TraceSession::counterEvent(std::string_view name, double tsUs, double value) {
    if (!ok_ || finished_) return;
    std::string line;
    line.reserve(96 + name.size());
    line += "{\"ph\":\"C\",\"pid\":";
    line += std::to_string(kPid);
    line += ",\"tid\":0,\"ts\":";
    appendUs(line, tsUs);
    line += ",\"name\":";
    appendEscaped(line, name);
    line += ",\"cat\":\"counter\",\"args\":{\"value\":";
    appendDouble(line, value);
    line += "}}";
    emit(line);
}

namespace {

std::string flowEvent(char ph, std::uint64_t id, int tid, double tsUs, bool bindEnclosing) {
    std::string line;
    line.reserve(96);
    line += "{\"ph\":\"";
    line += ph;
    line += "\",\"pid\":";
    line += std::to_string(kPid);
    line += ",\"tid\":";
    line += std::to_string(tid);
    line += ",\"ts\":";
    appendUs(line, tsUs);
    line += ",\"name\":\"pkt\",\"cat\":\"packet\",\"id\":";
    line += std::to_string(id);
    if (bindEnclosing) line += ",\"bp\":\"e\"";
    line += "}";
    return line;
}

}  // namespace

void TraceSession::flowBegin(std::uint64_t id, int tid, double tsUs) {
    if (!ok_ || finished_) return;
    emit(flowEvent('s', id, tid, tsUs, false));
}

void TraceSession::flowStep(std::uint64_t id, int tid, double tsUs) {
    if (!ok_ || finished_) return;
    emit(flowEvent('t', id, tid, tsUs, false));
}

void TraceSession::flowEnd(std::uint64_t id, int tid, double tsUs) {
    if (!ok_ || finished_) return;
    emit(flowEvent('f', id, tid, tsUs, true));
}

void TraceSession::threadName(int tid, std::string_view name) {
    if (!ok_ || finished_) return;
    std::string line;
    line.reserve(96 + name.size());
    line += "{\"ph\":\"M\",\"pid\":";
    line += std::to_string(kPid);
    line += ",\"tid\":";
    line += std::to_string(tid);
    line += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    appendEscaped(line, name);
    line += "}}";
    emit(line);
}

void TraceSession::processName(std::string_view name) {
    if (!ok_ || finished_) return;
    std::string line;
    line.reserve(96 + name.size());
    line += "{\"ph\":\"M\",\"pid\":";
    line += std::to_string(kPid);
    line += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    appendEscaped(line, name);
    line += "}}";
    emit(line);
}

void TraceSession::finish() {
    if (finished_) return;
    finished_ = true;
    if (!ok_) return;
    out_ << "\n]}\n";
    out_.flush();
    if (!out_.good()) ok_ = false;
    out_.close();
}

}  // namespace g5r::obs
