// g5r-stats — render metrics timelines and gate perf regressions.
//
// Three subcommands, all exposed here as library functions so tests can
// drive them without spawning processes:
//
//   timeline <file.metrics.jsonl>      render channels over simulated time
//   percentiles <BENCH.json|timeline>  print latency percentile tables
//   diff <baseline> <current>          compare two BENCH_*.json documents or
//                                      two metrics timelines against
//                                      per-metric relative thresholds
//
// diff semantics (the CI perf-regression gate):
//   * Points pair up by an identity key built from their config members
//     (every string/bool member plus the integer sweep knobs) — never from
//     measured values.
//   * Within paired points, numeric leaves are flattened to dotted metric
//     paths and compared by relative delta |cur - base| / max(|base|, eps).
//   * Host-dependent metrics (wallSeconds, sweepWallSeconds,
//     profileBuckets.*, host.*) are excluded: a committed baseline must be
//     comparable across machines. Simulated results (runtimeTicks,
//     memLatency*, normalizedPerf) are deterministic and do compare.
//   * A point or metric present in the baseline but missing from the
//     current document is a violation (silent metric loss must not pass a
//     gate); current-only additions are ignored (schemas may grow).
//   * Exit status mirrors g5r-diff: 0 = within thresholds, 1 = violations,
//     2 = usage / unreadable input.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace g5r::exp { class Json; }

namespace g5r::obs {

struct MetricsTimeline;

/// One metric threshold override: metrics whose dotted path contains
/// @p match (substring) use @p threshold instead of the default.
struct MetricThreshold {
    std::string match;
    double threshold = 0.25;
};

struct StatsDiffOptions {
    double defaultThreshold = 0.25;        ///< Relative delta allowed.
    std::vector<MetricThreshold> perMetric;  ///< First match wins.
};

/// One out-of-threshold metric (or a structural loss, note != "").
struct StatsDiffViolation {
    std::string point;   ///< Identity key of the owning point ("" = doc level).
    std::string metric;  ///< Dotted metric path.
    double baseline = 0;
    double current = 0;
    double relDelta = 0;
    double threshold = 0;
    std::string note;    ///< "missing point" / "missing metric" when structural.
};

struct StatsDiffReport {
    bool comparable = false;  ///< False: inputs unreadable/mismatched (error set).
    std::string error;
    std::size_t pointsCompared = 0;
    std::size_t metricsCompared = 0;
    std::vector<StatsDiffViolation> violations;

    bool withinThresholds() const { return comparable && violations.empty(); }
};

/// Diff two parsed BENCH_*.json documents.
StatsDiffReport diffBenchDocuments(const exp::Json& baseline, const exp::Json& current,
                                   const StatsDiffOptions& opts);

/// Diff two metrics timelines by the final absolute value of every channel.
StatsDiffReport diffTimelines(const MetricsTimeline& baseline,
                              const MetricsTimeline& current,
                              const StatsDiffOptions& opts);

/// Human-readable report (one line per violation plus a summary).
std::string formatStatsDiffReport(const StatsDiffReport& report,
                                  const std::string& baselinePath,
                                  const std::string& currentPath);

/// ASCII rendering of a timeline: one bar chart per channel over simulated
/// time. @p channelFilter: only channels containing the substring ("" =
/// all). @p maxChannels caps the output (0 = unlimited).
std::string renderTimeline(const MetricsTimeline& timeline,
                           const std::string& channelFilter, std::size_t maxChannels);

/// Percentile tables from a BENCH document: every memLatency entry of every
/// point becomes a row (count, min, mean, p50, p99, max).
std::string renderBenchPercentiles(const exp::Json& doc);

/// Full CLI entry point (argv-style, argv[0] ignored). Writes to stdout /
/// stderr; returns the process exit status (0/1/2).
int statsCliMain(int argc, const char* const* argv);

}  // namespace g5r::obs
