#include "obs/metrics.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/json.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace g5r::obs {

MetricsSession::MetricsSession(Simulation& sim, std::string path, std::string runLabel,
                               Tick intervalTicks)
    : sim_(sim),
      path_(std::move(path)),
      out_(path_, std::ios::out | std::ios::trunc),
      interval_(intervalTicks > 0 ? intervalTicks : 1),
      nextTick_(sim.curTick()) {
    ok_ = static_cast<bool>(out_);
    if (!ok_) return;
    exp::Json header = exp::Json::object();
    header["g5rMetrics"] = 1;
    header["schema"] = kSchema;
    header["run"] = runLabel;
    header["intervalTicks"] = static_cast<std::uint64_t>(interval_);
    out_ << header.dump() << '\n';
}

MetricsSession::~MetricsSession() { finish(sim_.curTick()); }

void MetricsSession::refreshChannels() {
    for (const SimObject* obj : sim_.objects()) {
        for (const auto& stat : obj->statsGroup().all()) {
            const stats::Stat* s = stat.get();
            if (!seen_.insert(s).second) continue;
            if (const auto* dist = dynamic_cast<const stats::Distribution*>(s)) {
                channels_.push_back({s->name() + ".count",
                                     [dist] { return static_cast<double>(dist->count()); }});
                channels_.push_back({s->name() + ".mean", [dist] { return dist->mean(); }});
                channels_.push_back({s->name() + ".max", [dist] { return dist->maxValue(); }});
            } else if (const auto* hist = dynamic_cast<const stats::Histogram*>(s)) {
                channels_.push_back({s->name() + ".count",
                                     [hist] { return static_cast<double>(hist->count()); }});
                channels_.push_back({s->name() + ".p50", [hist] { return hist->quantile(0.50); }});
                channels_.push_back({s->name() + ".p99", [hist] { return hist->quantile(0.99); }});
                channels_.push_back(
                    {s->name() + ".p999", [hist] { return hist->quantile(0.999); }});
            } else {
                channels_.push_back({s->name(), [s] { return s->value(); }});
            }
        }
    }
}

void MetricsSession::sampleAt(Tick when) {
    nextTick_ = when + interval_;
    if (!ok_) return;
    refreshChannels();
    exp::Json deltas = exp::Json::object();
    for (Channel& ch : channels_) {
        const double cur = ch.read();
        if (cur == ch.prev) continue;
        deltas[ch.name] = cur - ch.prev;
        ch.prev = cur;
    }
    exp::Json line = exp::Json::object();
    line["t"] = static_cast<std::uint64_t>(when);
    line["d"] = std::move(deltas);
    out_ << line.dump() << '\n';
    ++samples_;
}

void MetricsSession::finish(Tick finalTick) {
    if (finished_) return;
    finished_ = true;
    if (!ok_) return;
    // Tail sample: a short run's whole story may live between the last
    // interval boundary and the end tick.
    sampleAt(finalTick);
    exp::Json footer = exp::Json::object();
    footer["end"] = static_cast<std::uint64_t>(finalTick);
    footer["samples"] = samples_;
    out_ << footer.dump() << '\n';
    out_.flush();
    out_.close();
}

// ---------------------------------------------------------------- reading --

MetricsTimeline readMetricsTimeline(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open metrics timeline: " + path);

    MetricsTimeline tl;
    std::string lineText;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(in, lineText)) {
        ++lineNo;
        if (lineText.empty()) continue;
        exp::Json line;
        try {
            line = exp::Json::parse(lineText);
        } catch (const std::exception& e) {
            std::ostringstream err;
            err << path << ":" << lineNo << ": bad JSONL line: " << e.what();
            throw std::runtime_error(err.str());
        }
        if (!sawHeader) {
            if (!line.isObject() || !line.contains("g5rMetrics")) {
                throw std::runtime_error(path + ": not a g5r metrics timeline (bad header)");
            }
            tl.schema = static_cast<int>(line.at("schema").asInt());
            if (line.contains("run")) tl.run = line.at("run").asString();
            tl.intervalTicks = static_cast<Tick>(line.at("intervalTicks").asInt());
            sawHeader = true;
            continue;
        }
        if (line.contains("t")) {
            MetricsSample sample;
            sample.tick = static_cast<Tick>(line.at("t").asInt());
            for (const auto& [name, value] : line.at("d").members()) {
                sample.deltas.emplace_back(name, value.asDouble());
            }
            tl.samples.push_back(std::move(sample));
        } else if (line.contains("end")) {
            tl.endTick = static_cast<Tick>(line.at("end").asInt());
            if (line.contains("samples")) {
                tl.declaredSamples = static_cast<std::uint64_t>(line.at("samples").asInt());
            }
        }
    }
    if (!sawHeader) throw std::runtime_error(path + ": empty metrics timeline");
    return tl;
}

std::vector<std::string> MetricsTimeline::channels() const {
    std::vector<std::string> out;
    std::unordered_set<std::string_view> seen;
    for (const MetricsSample& s : samples) {
        for (const auto& [name, delta] : s.deltas) {
            (void)delta;
            if (seen.insert(name).second) out.push_back(name);
        }
    }
    return out;
}

std::vector<std::pair<Tick, double>> MetricsTimeline::series(std::string_view channel) const {
    std::vector<std::pair<Tick, double>> out;
    out.reserve(samples.size());
    double acc = 0.0;
    for (const MetricsSample& s : samples) {
        for (const auto& [name, delta] : s.deltas) {
            if (name == channel) acc += delta;
        }
        out.emplace_back(s.tick, acc);
    }
    return out;
}

double MetricsTimeline::finalValue(std::string_view channel) const {
    double acc = 0.0;
    for (const MetricsSample& s : samples) {
        for (const auto& [name, delta] : s.deltas) {
            if (name == channel) acc += delta;
        }
    }
    return acc;
}

}  // namespace g5r::obs
