// g5r-critpath — critical-path analysis over .reqtrace.jsonl sidecars.
//
//   g5r-critpath [--json] [--waterfall[=N]] [--assert-sum] <trace.reqtrace.jsonl>
//
// Renders per-stage blame tables (aggregate ticks, share of end-to-end time,
// and share percentiles across root requests) and an optional per-request
// waterfall: one fixed-width glyph strip per root, each column showing the
// stage that owns that slice of the request's window under the blame
// precedence (reqtrace.hh). Exposed as library functions so tests can drive
// them without spawning processes.
//
// Exit status: 0 = analysed fine (and --assert-sum held), 1 = --assert-sum
// violated, 2 = usage error or unreadable trace.
#pragma once

#include <cstddef>
#include <string>

#include "obs/reqtrace.hh"

namespace g5r::exp { class Json; }

namespace g5r::obs {

/// Glyph used by the waterfall for @p stage (h/d/f/x/m/r/n; '.' is the
/// uncovered filler).
char reqStageGlyph(ReqStage stage);

/// Aggregate blame table: one row per stage (ticks, share of the summed
/// end-to-end time, p50/max share across roots) plus the unattributed row
/// and a 100.0% total line.
std::string renderBlameTable(const BlameSummary& blame);

/// Per-request waterfall over the first @p maxRequests roots (0 = all):
/// a @p width-column strip across each root's [begin, end] window, every
/// column labelled with the highest-precedence stage active at its midpoint.
std::string renderWaterfall(const std::vector<ReqRecord>& records,
                            const BlameSummary& blame, std::size_t maxRequests = 0,
                            std::size_t width = 64);

/// Machine-readable form: run metadata, per-root blame, aggregate ticks and
/// percent shares (shares of the summed root windows; they sum to 100).
exp::Json blameReportJson(const ReqTraceFile& file, const BlameSummary& blame);

/// Full CLI entry point (argv-style, argv[0] ignored). Writes to stdout /
/// stderr; returns the process exit status (0/1/2).
int critpathCliMain(int argc, const char* const* argv);

}  // namespace g5r::obs
