// Streaming writer for the Chrome trace-event "JSON Array Format", the
// on-disk format both chrome://tracing and Perfetto load directly.
//
// The document is {"traceEvents": [...]}; each event is one compact JSON
// object appended to the open file as it happens, so a multi-second sweep
// never buffers its trace in memory. finish() closes the array; an
// unfinished file (crashed run) is still salvageable because the viewers
// tolerate a truncated array tail.
//
// Event vocabulary used here (ph field):
//   "X"  complete event: a span with ts + dur (one per event dispatch)
//   "C"  counter sample
//   "s"/"t"/"f"  flow start / step / end (packet lifecycle arrows)
//   "M"  metadata (thread_name: labels a tid track with a SimObject name)
//
// Timestamps are host microseconds relative to the session start. The
// simulated tick of each span rides along in args.tick.
//
// A TraceSession whose file cannot be opened reports ok() == false and
// turns every emit into a no-op — observability must never kill a run.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "sim/ticks.hh"

namespace g5r::obs {

class TraceSession {
public:
    /// Opens @p path for writing and emits the document prefix.
    explicit TraceSession(std::string path);
    ~TraceSession();
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    /// False when the file could not be opened (or a write failed); all
    /// emit calls are silently dropped in that state.
    bool ok() const { return ok_; }
    const std::string& path() const { return path_; }

    /// ph "X": a span of host time [tsUs, tsUs+durUs) on track @p tid.
    void completeEvent(int tid, std::string_view name, std::string_view cat,
                       double tsUs, double durUs, Tick tick);

    /// ph "C": named counter sampled at @p tsUs.
    void counterEvent(std::string_view name, double tsUs, double value);

    /// ph "s"/"t"/"f": one packet-lifecycle flow, keyed by packet id. The
    /// end event carries bp:"e" so the arrow binds to its enclosing span.
    void flowBegin(std::uint64_t id, int tid, double tsUs);
    void flowStep(std::uint64_t id, int tid, double tsUs);
    void flowEnd(std::uint64_t id, int tid, double tsUs);

    /// ph "M" thread_name: label track @p tid (call once per track).
    void threadName(int tid, std::string_view name);

    /// ph "M" process_name: label the whole process group with the run
    /// name, so Perfetto shows it instead of a raw pid (call once).
    void processName(std::string_view name);

    /// Close the traceEvents array and the file. Idempotent; also run by
    /// the destructor.
    void finish();

    /// Number of "X" span events emitted (round-trip tested against the
    /// event queue's dispatch count).
    std::uint64_t spansWritten() const { return spans_; }

    /// Total events of any kind emitted.
    std::uint64_t eventsWritten() const { return events_; }

private:
    void emit(const std::string& line);
    static void appendEscaped(std::string& out, std::string_view s);

    std::string path_;
    std::ofstream out_;
    bool ok_ = false;
    bool finished_ = false;
    bool first_ = true;
    std::uint64_t spans_ = 0;
    std::uint64_t events_ = 0;
};

}  // namespace g5r::obs
