// obs::MetricsSession — the quantitative metrics timeline.
//
// Where TraceSession answers "what happened when" with host-time spans, the
// metrics session answers "what did the counters look like over simulated
// time": on a simulated-tick interval it snapshots every stats::Group of the
// simulation into one line of an append-only JSONL file.
//
// Format (one JSON document per line):
//
//   header   {"g5rMetrics":1,"schema":1,"run":"<label>","intervalTicks":N}
//   sample   {"t":<tick>,"d":{"<channel>":<delta>,...}}
//   footer   {"end":<tick>,"samples":<count>}
//
// Channels are flat numeric series derived from the stats:
//
//   Scalar / Formula  ->  "<obj>.<stat>"
//   Distribution      ->  ".count" / ".mean" / ".max" sub-channels
//   Histogram         ->  ".count" / ".p50" / ".p99" / ".p999" sub-channels
//
// Samples are delta-encoded: each line carries only the channels whose value
// changed since the previous sample, as (current - previous). Readers
// reconstruct absolute series by cumulative sum from an implicit 0 — which
// also round-trips a stats reset mid-run as a negative delta. Nothing
// host-dependent (wall time, pointers) is ever written, so timelines of the
// same run are byte-identical at any --jobs count.
//
// Cost: zero when disabled (no MetricsSession is constructed and ObsSession
// may not be either — the simulation keeps its no-observer fast path). When
// enabled the per-dispatch cost is one tick comparison; the snapshot work is
// paid once per interval.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace g5r {
class Simulation;
namespace stats { class Stat; }
}  // namespace g5r

namespace g5r::obs {

class MetricsSession {
public:
    /// Timeline format version, written into the header line.
    static constexpr int kSchema = 1;

    /// Open @p path for writing. An unopenable path degrades to
    /// ok()==false and every subsequent call is a no-op — the run survives
    /// (same contract as the flight recorder).
    MetricsSession(Simulation& sim, std::string path, std::string runLabel,
                   Tick intervalTicks);
    ~MetricsSession();
    MetricsSession(const MetricsSession&) = delete;
    MetricsSession& operator=(const MetricsSession&) = delete;

    bool ok() const { return ok_; }
    const std::string& path() const { return path_; }
    std::uint64_t samplesWritten() const { return samples_; }

    /// Hot-path gate, called per dispatch by ObsSession: one comparison
    /// until the next interval boundary.
    void maybeSample(Tick when) {
        if (when >= nextTick_) sampleAt(when);
    }

    /// Snapshot all stats now and advance the interval clock.
    void sampleAt(Tick when);

    /// Final tail sample + footer line; closes the file. Idempotent, also
    /// run by the destructor.
    void finish(Tick finalTick);

private:
    /// One numeric series: a name and how to read its current value.
    struct Channel {
        std::string name;
        std::function<double()> read;
        double prev = 0.0;
    };

    /// Pick up stats registered since the last sample (SimObjects and stats
    /// can be created after the session).
    void refreshChannels();

    Simulation& sim_;
    std::string path_;
    std::ofstream out_;
    bool ok_ = false;
    Tick interval_;
    Tick nextTick_ = 0;
    std::uint64_t samples_ = 0;
    bool finished_ = false;

    std::vector<Channel> channels_;
    std::unordered_set<const stats::Stat*> seen_;
};

// ---------------------------------------------------------------- reading --

/// One decoded sample line.
struct MetricsSample {
    Tick tick = 0;
    std::vector<std::pair<std::string, double>> deltas;  ///< Insertion order.
};

/// A fully parsed timeline file.
struct MetricsTimeline {
    int schema = 0;
    std::string run;
    Tick intervalTicks = 0;
    Tick endTick = 0;
    std::uint64_t declaredSamples = 0;  ///< From the footer.
    std::vector<MetricsSample> samples;

    /// Every channel name that ever appears, in first-appearance order.
    std::vector<std::string> channels() const;

    /// Absolute series for @p channel: cumulative sum of its deltas,
    /// carried forward across samples that omit it. One point per sample.
    std::vector<std::pair<Tick, double>> series(std::string_view channel) const;

    /// Final absolute value of @p channel (0 if never emitted).
    double finalValue(std::string_view channel) const;
};

/// Parse a timeline written by MetricsSession. Throws std::runtime_error on
/// unreadable files or malformed lines.
MetricsTimeline readMetricsTimeline(const std::string& path);

}  // namespace g5r::obs
