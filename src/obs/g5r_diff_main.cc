// g5r-diff: first-divergence finder over two .g5rec flight recordings.
//
//   g5r-diff [--packets-only] [--json] <a.g5rec> <b.g5rec>
//
// Exit status: 0 = recordings identical, 1 = divergence found (report on
// stdout), 2 = usage / unreadable or incomparable recordings (reason on
// stderr). --packets-only compares the packet lane only — the right mode
// for gated-vs-ungated pairs, whose dispatch streams differ by design.
// --json emits the report as one JSON document on stdout (incomparable
// inputs included, so scripts never have to parse stderr); exit codes are
// unchanged.
#include <cstring>
#include <iostream>
#include <string>

#include "obs/diff.hh"

namespace {

int usage() {
    std::cerr << "usage: g5r-diff [--packets-only] [--json] <a.g5rec> <b.g5rec>\n"
                 "  compares two flight recordings (GEM5RTL_RECORD sidecars) and\n"
                 "  reports the first divergent interval and owning SimObject.\n"
                 "  --packets-only  ignore the dispatch lane (gated-vs-ungated pairs)\n"
                 "  --json          one JSON report document on stdout\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using g5r::obs::DiffLane;
    DiffLane lane = DiffLane::kBoth;
    bool json = false;
    std::string pathA, pathB;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--packets-only") == 0) {
            lane = DiffLane::kPacketsOnly;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (pathA.empty()) {
            pathA = argv[i];
        } else if (pathB.empty()) {
            pathB = argv[i];
        } else {
            return usage();
        }
    }
    if (pathB.empty()) return usage();

    const g5r::obs::DivergenceReport rep = g5r::obs::diffRecordingFiles(pathA, pathB, lane);
    if (json) {
        std::cout << g5r::obs::divergenceReportJson(rep, pathA, pathB) << '\n';
        return !rep.comparable ? 2 : (rep.diverged ? 1 : 0);
    }
    if (!rep.comparable) {
        std::cerr << "g5r-diff: " << rep.error << '\n';
        return 2;
    }
    std::cout << g5r::obs::formatDivergenceReport(rep, pathA, pathB);
    return rep.diverged ? 1 : 0;
}
