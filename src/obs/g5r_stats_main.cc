// g5r-stats: timelines, percentile tables, and the perf-regression gate.
#include "obs/stats_cli.hh"

int main(int argc, char** argv) { return g5r::obs::statsCliMain(argc, argv); }
