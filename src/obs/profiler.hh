// Per-SimObject host-time profiling.
//
// Answers "where does the wall-clock of Simulation::run() actually go?" —
// the question behind the paper's fig. 6/7 and table 2 overhead numbers —
// by attributing the host time of every event dispatch to the SimObject
// that owns the event, then folding objects into a handful of buckets
// (RTL evaluation, memory system, cores, queue overhead).
//
// HostProfiler itself is a passive accumulator: obs::ObsSession owns the
// steady_clock reads and feeds it exact dispatch counts plus (possibly
// strided) timing samples. With stride N only every Nth dispatch is timed;
// the report scales each slot's sampled seconds by dispatches/sampled, so
// the expensive steady_clock calls shrink by N while counts stay exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace g5r::exp {
class Json;
}  // namespace g5r::exp

namespace g5r::obs {

/// Coarse wall-time bucket for a SimObject, decided from its name.
/// Memory terms are checked before RTL/core terms so "system.cpu0.l1d"
/// lands in "memory" while "system.cpu0" lands in "core".
std::string_view classifyBucket(std::string_view objectName);

struct ProfileEntry {
    std::string name;               ///< SimObject name (or "(unattributed)").
    std::uint64_t dispatches = 0;   ///< Exact dispatch count.
    std::uint64_t sampled = 0;      ///< Dispatches that were actually timed.
    double sampledSeconds = 0.0;    ///< Wall time of the timed subset.
    double estimatedSeconds = 0.0;  ///< sampledSeconds scaled to all dispatches.
};

struct ProfileBucket {
    std::string name;
    double seconds = 0.0;
    double fraction = 0.0;  ///< Of runSeconds.
};

struct ProfileReport {
    double runSeconds = 0.0;        ///< Wall time inside Simulation::run().
    std::uint64_t dispatches = 0;   ///< Total events dispatched.
    unsigned stride = 1;

    /// Per-object attribution, sorted by estimatedSeconds, largest first.
    std::vector<ProfileEntry> entries;

    /// Fixed-order buckets: rtl, memory, core, other, queue. "queue" is the
    /// remainder runSeconds minus all attributed handler time — the event
    /// loop, heap maintenance, and timing skew — so the buckets always sum
    /// to runSeconds exactly.
    std::vector<ProfileBucket> buckets() const;

    /// Human-readable table (buckets then the top object entries).
    std::string table() const;

    /// Machine-readable form for BENCH_*.json (exp/bench_report).
    exp::Json toJson() const;
};

class HostProfiler {
public:
    explicit HostProfiler(unsigned stride) : stride_(stride ? stride : 1) {}

    /// Register an attribution slot; returns its index. Call before use.
    int addSlot(std::string name);

    void countDispatch(int slot) { ++slots_[static_cast<std::size_t>(slot)].dispatches; }

    void addSample(int slot, double seconds) {
        Slot& s = slots_[static_cast<std::size_t>(slot)];
        ++s.sampled;
        s.seconds += seconds;
    }

    void addRunSeconds(double seconds) { runSeconds_ += seconds; }

    unsigned stride() const { return stride_; }

    ProfileReport report() const;

private:
    struct Slot {
        std::string name;
        std::uint64_t dispatches = 0;
        std::uint64_t sampled = 0;
        double seconds = 0.0;
    };

    unsigned stride_;
    double runSeconds_ = 0.0;
    std::vector<Slot> slots_;
};

}  // namespace g5r::obs
