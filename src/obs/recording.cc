#include "obs/recording.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace g5r::obs {

namespace {

const std::string kUnknownObject = "(unknown)";

[[noreturn]] void parseError(const std::string& path, std::size_t lineNo, const std::string& what) {
    throw std::runtime_error(path + ":" + std::to_string(lineNo) + ": " + what);
}

std::uint64_t parseHex(const std::string& tok) {
    return std::stoull(tok, nullptr, 16);
}

}  // namespace

const std::string& Recording::objectName(int slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= objectNames.size() ||
        objectNames[static_cast<std::size_t>(slot)].empty()) {
        return kUnknownObject;
    }
    return objectNames[static_cast<std::size_t>(slot)];
}

Recording Recording::load(const std::string& path) {
    std::ifstream in{path};
    if (!in) throw std::runtime_error(path + ": cannot open recording");

    Recording rec;
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty()) continue;
        std::istringstream ls{line};
        std::string tag;
        ls >> tag;

        if (!sawHeader) {
            unsigned version = 0;
            if (tag != "g5rec" || !(ls >> version) || version != 1) {
                parseError(path, lineNo, "not a g5rec version-1 recording");
            }
            sawHeader = true;
            continue;
        }

        if (tag == "run") {
            // Rest of line verbatim (label may contain anything but '\n').
            std::getline(ls >> std::ws, rec.runLabel);
        } else if (tag == "interval") {
            if (!(ls >> rec.intervalTicks)) parseError(path, lineNo, "bad interval line");
        } else if (tag == "iv") {
            IntervalRecord iv;
            std::string dDig, dCum, pDig, pCum;
            if (!(ls >> iv.index >> iv.startTick >> iv.dispatchCount >> dDig >> dCum >>
                  iv.packetCount >> pDig >> pCum)) {
                parseError(path, lineNo, "bad iv line");
            }
            iv.dispatchDigest = parseHex(dDig);
            iv.cumDispatchDigest = parseHex(dCum);
            iv.packetDigest = parseHex(pDig);
            iv.cumPacketDigest = parseHex(pCum);
            if (!rec.intervals.empty() && rec.intervals.back().index >= iv.index) {
                parseError(path, lineNo, "iv indices not strictly increasing");
            }
            rec.intervals.push_back(std::move(iv));
        } else if (tag == "ob") {
            if (rec.intervals.empty()) parseError(path, lineNo, "ob line before any iv line");
            ObjEntry e;
            std::string dig;
            if (!(ls >> e.slot >> e.count >> dig >> e.firstTick)) {
                parseError(path, lineNo, "bad ob line");
            }
            e.digest = parseHex(dig);
            rec.intervals.back().objects.push_back(std::move(e));
        } else if (tag == "obj") {
            int slot = 0;
            std::string name;
            if (!(ls >> slot) || slot < 0) parseError(path, lineNo, "bad obj line");
            std::getline(ls >> std::ws, name);
            if (static_cast<std::size_t>(slot) >= rec.objectNames.size()) {
                rec.objectNames.resize(static_cast<std::size_t>(slot) + 1);
            }
            rec.objectNames[static_cast<std::size_t>(slot)] = std::move(name);
        } else if (tag == "bb") {
            BlackBoxEntry e;
            if (!(ls >> e.seq >> e.kind >> e.tick >> e.slot)) {
                parseError(path, lineNo, "bad bb line");
            }
            std::getline(ls >> std::ws, e.text);
            rec.blackBox.push_back(std::move(e));
        } else if (tag == "end") {
            std::string dCum, pCum;
            if (!(ls >> rec.finalTick >> rec.totalDispatches >> rec.totalPackets >> dCum >>
                  pCum)) {
                parseError(path, lineNo, "bad end line");
            }
            rec.finalDispatchDigest = parseHex(dCum);
            rec.finalPacketDigest = parseHex(pCum);
            rec.hasEnd = true;
        } else {
            parseError(path, lineNo, "unknown record tag '" + tag + "'");
        }
    }
    if (!sawHeader) throw std::runtime_error(path + ": empty recording");
    if (rec.intervalTicks == 0) throw std::runtime_error(path + ": missing interval line");
    return rec;
}

}  // namespace g5r::obs
