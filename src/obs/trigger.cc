#include "obs/trigger.hh"

#include <cstdlib>
#include <stdexcept>

namespace g5r::obs {

namespace {

bool parseU64(std::string_view s, std::uint64_t* out) {
    if (s.empty()) return false;
    const std::string str{s};
    char* end = nullptr;
    const int base = str.size() > 2 && str[0] == '0' && (str[1] == 'x' || str[1] == 'X') ? 16 : 10;
    const unsigned long long v = std::strtoull(str.c_str(), &end, base);
    if (end == nullptr || *end != '\0') return false;
    *out = v;
    return true;
}

void setError(std::string* error, std::string what) {
    if (error != nullptr) *error = std::move(what);
}

}  // namespace

std::optional<TriggerSpec> TriggerSpec::parse(std::string_view spec, std::string* error) {
    TriggerSpec out;

    // Split off the optional "@pre,post" window suffix first.
    std::string_view body = spec;
    const std::size_t at = body.rfind('@');
    if (at != std::string_view::npos) {
        const std::string_view window = body.substr(at + 1);
        body = body.substr(0, at);
        const std::size_t comma = window.find(',');
        if (comma == std::string_view::npos ||
            !parseU64(window.substr(0, comma), &out.preTriggerCycles) ||
            !parseU64(window.substr(comma + 1), &out.postTriggerCycles)) {
            setError(error, "bad trigger window '" + std::string{window} +
                                "' (expected @<pre>,<post>)");
            return std::nullopt;
        }
    }

    if (const std::size_t eq = body.find("=="); eq != std::string_view::npos) {
        out.signal = std::string{body.substr(0, eq)};
        out.kind = Kind::kValueEquals;
        if (!parseU64(body.substr(eq + 2), &out.value)) {
            setError(error, "bad trigger value in '" + std::string{body} + "'");
            return std::nullopt;
        }
    } else if (const std::size_t colon = body.rfind(':'); colon != std::string_view::npos) {
        out.signal = std::string{body.substr(0, colon)};
        const std::string_view kind = body.substr(colon + 1);
        if (kind == "change") {
            out.kind = Kind::kAnyChange;
        } else if (kind == "rise") {
            out.kind = Kind::kRisingEdge;
        } else {
            setError(error, "unknown trigger kind '" + std::string{kind} +
                                "' (expected change or rise)");
            return std::nullopt;
        }
    } else {
        setError(error, "bad trigger spec '" + std::string{spec} +
                            "' (expected <signal>==<K>, <signal>:change, or <signal>:rise)");
        return std::nullopt;
    }
    if (out.signal.empty()) {
        setError(error, "empty signal name in trigger spec");
        return std::nullopt;
    }
    return out;
}

TriggerCapture::TriggerCapture(TriggerSpec spec, std::string vcdPath,
                               std::vector<rtl::VcdSignal> signals, std::uint64_t timescalePs)
    : spec_(std::move(spec)),
      vcdPath_(std::move(vcdPath)),
      signals_(std::move(signals)),
      timescalePs_(timescalePs) {
    bool found = false;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        if (signals_[i].name == spec_.signal ||
            signals_[i].scope + "." + signals_[i].name == spec_.signal) {
            watchIndex_ = i;
            found = true;
            break;
        }
    }
    if (!found) {
        throw std::invalid_argument("trigger signal '" + spec_.signal +
                                    "' not found in capture set");
    }
    if (spec_.preTriggerCycles > 0) ring_.resize(spec_.preTriggerCycles);
    cur_.resize(signals_.size());
}

TriggerCapture::~TriggerCapture() = default;

bool TriggerCapture::conditionFires(std::uint64_t watchValue) {
    switch (spec_.kind) {
    case TriggerSpec::Kind::kValueEquals: return watchValue == spec_.value;
    case TriggerSpec::Kind::kAnyChange: return havePrev_ && watchValue != prevWatch_;
    case TriggerSpec::Kind::kRisingEdge:
        return havePrev_ && prevWatch_ == 0 && watchValue != 0;
    }
    return false;
}

void TriggerCapture::cycle(std::uint64_t cycleNumber) {
    if (done_) return;
    for (std::size_t i = 0; i < signals_.size(); ++i) cur_[i] = signals_[i].read();

    if (!fired_) {
        const std::uint64_t watch = cur_[watchIndex_];
        const bool fires = conditionFires(watch);
        prevWatch_ = watch;
        havePrev_ = true;
        if (!fires) {
            if (!ring_.empty()) {
                Snapshot& slot = ring_[ringNext_];
                slot.cycle = cycleNumber;
                slot.values = cur_;
                ringNext_ = (ringNext_ + 1) % ring_.size();
                if (ringCount_ < ring_.size()) ++ringCount_;
            }
            return;
        }
        fire(cycleNumber);
        return;
    }

    writer_->dumpCycleValues(cycleNumber, cur_);
    if (postLeft_ == 0 || --postLeft_ == 0) finishCapture();
}

void TriggerCapture::fire(std::uint64_t cycleNumber) {
    fired_ = true;
    firedCycle_ = cycleNumber;
    // The writer — and the file — exist only from this point: an un-fired
    // trigger costs no I/O at all.
    writer_ = std::make_unique<rtl::VcdWriter>(vcdPath_, signals_, timescalePs_);
    const std::size_t start = ringCount_ < ring_.size() ? 0 : ringNext_;
    for (std::size_t i = 0; i < ringCount_; ++i) {
        const Snapshot& snap = ring_[(start + i) % ring_.size()];
        writer_->dumpCycleValues(snap.cycle, snap.values);
    }
    writer_->dumpCycleValues(cycleNumber, cur_);
    postLeft_ = spec_.postTriggerCycles;
    if (postLeft_ == 0) finishCapture();
}

void TriggerCapture::finishCapture() {
    done_ = true;
    writer_.reset();  // Closes (and flushes) the file.
    ring_.clear();
    ring_.shrink_to_fit();
}

std::unique_ptr<TriggerCapture> TriggerCapture::fromSpecString(
    std::string_view specString, std::string vcdPath, std::vector<rtl::VcdSignal> signals,
    std::uint64_t timescalePs, std::string* error) {
    const std::optional<TriggerSpec> spec = TriggerSpec::parse(specString, error);
    if (!spec) return nullptr;
    try {
        return std::make_unique<TriggerCapture>(*spec, std::move(vcdPath), std::move(signals),
                                                timescalePs);
    } catch (const std::invalid_argument& e) {
        setError(error, e.what());
        return nullptr;
    }
}

}  // namespace g5r::obs
