#include "obs/stats_cli.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "exp/json.hh"
#include "obs/metrics.hh"

namespace g5r::obs {

namespace {

// Integer members that are sweep-configuration knobs, not measurements:
// they contribute to a point's identity and are excluded from comparison.
constexpr const char* kConfigIntKeys[] = {"accelerators", "maxInflight", "baseElems",
                                          "rep", "intervalCycles"};

bool isConfigIntKey(std::string_view key) {
    for (const char* k : kConfigIntKeys) {
        if (key == k) return true;
    }
    return false;
}

/// Host-dependent (or free-text) metric paths that must not gate CI.
bool isExcludedMetric(std::string_view path) {
    if (path == "wallSeconds" || path == "sweepWallSeconds") return true;
    if (path.size() >= 5 && path.substr(0, 5) == "host.") return true;
    return path.find("profileBuckets") != std::string_view::npos ||
           path.find("error") != std::string_view::npos;
}

/// Identity key of a bench point: its string members plus the whitelisted
/// integer config knobs, in member order.
std::string pointIdentity(const exp::Json& point) {
    std::string id;
    for (const auto& [key, value] : point.members()) {
        const bool take = value.isString() || (value.isNumber() && isConfigIntKey(key));
        if (!take) continue;
        if (key == "error") continue;
        if (!id.empty()) id += ',';
        id += key;
        id += '=';
        id += value.isString() ? value.asString() : value.dump();
    }
    return id;
}

/// Flatten numeric (and bool) leaves of @p node to dotted-path/value pairs.
void flattenNumeric(const exp::Json& node, const std::string& prefix,
                    std::vector<std::pair<std::string, double>>& out) {
    if (node.isNumber()) {
        out.emplace_back(prefix, node.asDouble());
    } else if (node.isBool()) {
        out.emplace_back(prefix, node.asBool() ? 1.0 : 0.0);
    } else if (node.isObject()) {
        for (const auto& [key, value] : node.members()) {
            flattenNumeric(value, prefix.empty() ? key : prefix + "." + key, out);
        }
    } else if (node.isArray()) {
        for (std::size_t i = 0; i < node.items().size(); ++i) {
            flattenNumeric(node.items()[i], prefix + "." + std::to_string(i), out);
        }
    }
}

double resolveThreshold(const StatsDiffOptions& opts, std::string_view metric) {
    for (const MetricThreshold& t : opts.perMetric) {
        if (metric.find(t.match) != std::string_view::npos) return t.threshold;
    }
    return opts.defaultThreshold;
}

/// Compare one metric pair and append a violation if out of threshold.
void compareMetric(const StatsDiffOptions& opts, const std::string& pointId,
                   const std::string& metric, double base, double cur,
                   StatsDiffReport& report) {
    ++report.metricsCompared;
    const double absDelta = std::abs(cur - base);
    if (absDelta < 1e-12) return;
    const double rel = absDelta / std::max(std::abs(base), 1e-9);
    const double threshold = resolveThreshold(opts, metric);
    if (rel <= threshold) return;
    report.violations.push_back(
        StatsDiffViolation{pointId, metric, base, cur, rel, threshold, ""});
}

}  // namespace

StatsDiffReport diffBenchDocuments(const exp::Json& baseline, const exp::Json& current,
                                   const StatsDiffOptions& opts) {
    StatsDiffReport report;
    if (!baseline.isObject() || !baseline.contains("points") ||
        !baseline.at("points").isArray()) {
        report.error = "baseline is not a BENCH document (no points array)";
        return report;
    }
    if (!current.isObject() || !current.contains("points") ||
        !current.at("points").isArray()) {
        report.error = "current is not a BENCH document (no points array)";
        return report;
    }
    if (baseline.contains("bench") && current.contains("bench") &&
        baseline.at("bench").asString() != current.at("bench").asString()) {
        report.error = "bench name mismatch: baseline \"" +
                       baseline.at("bench").asString() + "\" vs current \"" +
                       current.at("bench").asString() + "\"";
        return report;
    }
    report.comparable = true;

    // Index current points by identity (first occurrence wins).
    std::unordered_map<std::string, const exp::Json*> curByIdentity;
    for (const exp::Json& p : current.at("points").items()) {
        curByIdentity.emplace(pointIdentity(p), &p);
    }

    for (const exp::Json& basePoint : baseline.at("points").items()) {
        const std::string id = pointIdentity(basePoint);
        const auto it = curByIdentity.find(id);
        if (it == curByIdentity.end()) {
            report.violations.push_back(
                StatsDiffViolation{id, "", 0, 0, 0, 0, "missing point"});
            continue;
        }
        ++report.pointsCompared;

        std::vector<std::pair<std::string, double>> baseMetrics, curMetrics;
        flattenNumeric(basePoint, "", baseMetrics);
        flattenNumeric(*it->second, "", curMetrics);
        std::unordered_map<std::string_view, double> curByName;
        for (const auto& [name, value] : curMetrics) curByName.emplace(name, value);

        for (const auto& [name, baseValue] : baseMetrics) {
            if (isConfigIntKey(name) || isExcludedMetric(name)) continue;
            const auto cit = curByName.find(name);
            if (cit == curByName.end()) {
                report.violations.push_back(
                    StatsDiffViolation{id, name, baseValue, 0, 0, 0, "missing metric"});
                continue;
            }
            compareMetric(opts, id, name, baseValue, cit->second, report);
        }
    }
    return report;
}

StatsDiffReport diffTimelines(const MetricsTimeline& baseline,
                              const MetricsTimeline& current,
                              const StatsDiffOptions& opts) {
    StatsDiffReport report;
    report.comparable = true;
    report.pointsCompared = 1;

    const std::vector<std::string> curChannels = current.channels();
    const std::unordered_set<std::string_view> curSet(curChannels.begin(),
                                                      curChannels.end());
    for (const std::string& channel : baseline.channels()) {
        const double baseValue = baseline.finalValue(channel);
        if (curSet.find(channel) == curSet.end()) {
            report.violations.push_back(
                StatsDiffViolation{"", channel, baseValue, 0, 0, 0, "missing metric"});
            continue;
        }
        compareMetric(opts, "", channel, baseValue, current.finalValue(channel), report);
    }
    return report;
}

std::string formatStatsDiffReport(const StatsDiffReport& report,
                                  const std::string& baselinePath,
                                  const std::string& currentPath) {
    std::ostringstream os;
    if (!report.comparable) {
        os << "g5r-stats: not comparable: " << report.error << '\n';
        return os.str();
    }
    os << "g5r-stats diff\n  baseline: " << baselinePath << "\n  current:  " << currentPath
       << '\n';
    for (const StatsDiffViolation& v : report.violations) {
        if (!v.note.empty()) {
            os << "VIOLATION " << v.note;
            if (!v.point.empty()) os << " [" << v.point << ']';
            if (!v.metric.empty()) os << ' ' << v.metric;
            os << '\n';
            continue;
        }
        char buf[160];
        std::snprintf(buf, sizeof buf, "VIOLATION %s: %.6g -> %.6g (%+.1f%%, limit %.0f%%)",
                      v.metric.c_str(), v.baseline, v.current,
                      100.0 * (v.current - v.baseline) /
                          std::max(std::abs(v.baseline), 1e-9),
                      100.0 * v.threshold);
        os << buf;
        if (!v.point.empty()) os << "  [" << v.point << ']';
        os << '\n';
    }
    os << (report.violations.empty() ? "OK" : "FAIL") << ": " << report.pointsCompared
       << " points, " << report.metricsCompared << " metrics compared, "
       << report.violations.size() << " violation(s)\n";
    return os.str();
}

std::string renderTimeline(const MetricsTimeline& timeline,
                           const std::string& channelFilter, std::size_t maxChannels) {
    std::ostringstream os;
    os << "timeline: run=\"" << timeline.run << "\" interval=" << timeline.intervalTicks
       << " ticks, " << timeline.samples.size() << " samples, end tick "
       << timeline.endTick << '\n';

    static constexpr char kGlyphs[] = " .:-=+*#%@";
    static constexpr std::size_t kWidth = 60;
    std::size_t shown = 0;
    std::size_t matched = 0;
    for (const std::string& channel : timeline.channels()) {
        if (!channelFilter.empty() && channel.find(channelFilter) == std::string::npos) {
            continue;
        }
        ++matched;
        if (maxChannels != 0 && shown >= maxChannels) continue;
        ++shown;

        const auto series = timeline.series(channel);
        double lo = 0.0, hi = 0.0;
        for (const auto& [tick, value] : series) {
            lo = std::min(lo, value);
            hi = std::max(hi, value);
        }
        // Resample the series onto a fixed-width strip: each column shows
        // the last value at or before its share of the sample range.
        std::string strip(kWidth, ' ');
        if (!series.empty() && hi > lo) {
            for (std::size_t col = 0; col < kWidth; ++col) {
                const std::size_t idx =
                    std::min(series.size() - 1, col * series.size() / kWidth);
                const double norm = (series[idx].second - lo) / (hi - lo);
                const std::size_t glyph = static_cast<std::size_t>(
                    norm * (sizeof kGlyphs - 2));
                strip[col] = kGlyphs[std::min<std::size_t>(glyph, sizeof kGlyphs - 2)];
            }
        }
        char head[192];
        std::snprintf(head, sizeof head, "%-48s |%s| final %.6g\n", channel.c_str(),
                      strip.c_str(), series.empty() ? 0.0 : series.back().second);
        os << head;
    }
    if (maxChannels != 0 && matched > shown) {
        os << "... " << (matched - shown) << " more channel(s) hidden (--max)\n";
    }
    return os.str();
}

std::string renderBenchPercentiles(const exp::Json& doc) {
    std::ostringstream os;
    if (!doc.isObject() || !doc.contains("points") || !doc.at("points").isArray()) {
        return "no points array\n";
    }
    char buf[256];
    std::snprintf(buf, sizeof buf, "%-44s %10s %10s %10s %10s %10s %10s\n", "point/master",
                  "count", "min", "mean", "p50", "p99", "max");
    os << buf;
    for (const exp::Json& point : doc.at("points").items()) {
        if (!point.contains("memLatency") || !point.at("memLatency").isObject()) continue;
        const std::string id = pointIdentity(point);
        os << id << '\n';
        for (const auto& [suffix, lat] : point.at("memLatency").members()) {
            if (!lat.isObject()) continue;
            const auto get = [&lat](const char* key) {
                return lat.contains(key) ? lat.at(key).asDouble() : 0.0;
            };
            std::snprintf(buf, sizeof buf,
                          "  %-42s %10.0f %10.0f %10.1f %10.0f %10.0f %10.0f\n",
                          suffix.c_str(), get("count"), get("minTicks"), get("meanTicks"),
                          get("p50Ticks"), get("p99Ticks"), get("maxTicks"));
            os << buf;
        }
        if (point.contains("memLatencyP50")) {
            std::snprintf(buf, sizeof buf, "  %-42s %43s p50 %-10.0f p99 %-10.0f\n",
                          "(merged)", "", point.at("memLatencyP50").asDouble(),
                          point.contains("memLatencyP99")
                              ? point.at("memLatencyP99").asDouble()
                              : 0.0);
            os << buf;
        }
        // dmaSpm-path extras: per-descriptor DMA latency percentiles and the
        // SPM hit/miss/MSHR counters, when the point carries them.
        if (point.contains("dmaLatencyP50")) {
            const auto get = [&point](const char* key) {
                return point.contains(key) ? point.at(key).asDouble() : 0.0;
            };
            std::snprintf(buf, sizeof buf,
                          "  %-42s %10.0f %10s %10s %10.0f %10.0f %10.0f\n",
                          "dma.descriptorLatency", get("dmaDescriptors"), "-", "-",
                          get("dmaLatencyP50"), get("dmaLatencyP99"),
                          get("dmaLatencyMax"));
            os << buf;
            std::snprintf(buf, sizeof buf,
                          "  %-42s hits %-10.0f misses %-10.0f mshrJoins %-10.0f\n",
                          "spm.reads", get("spmReadHits"), get("spmReadMisses"),
                          get("spmMshrJoins"));
            os << buf;
        }
    }
    return os.str();
}

namespace {

int usage() {
    std::cerr
        << "usage: g5r-stats <command> ...\n"
           "  g5r-stats timeline <file.metrics.jsonl> [--channel SUBSTR] [--max N]\n"
           "      render a GEM5RTL_METRICS timeline as per-channel strips\n"
           "  g5r-stats percentiles <BENCH_*.json | file.metrics.jsonl>\n"
           "      print latency percentile tables\n"
           "  g5r-stats diff <baseline> <current> [--threshold F] [--metric NAME[=F]]\n"
           "      compare two BENCH_*.json documents or two metrics timelines;\n"
           "      exit 1 when any metric moves more than its relative threshold\n"
           "      (default 0.25; --metric NAME=F overrides metrics containing NAME)\n";
    return 2;
}

/// What kind of stats file is this? BENCH documents are one JSON object;
/// timelines are JSONL whose first line carries the g5rMetrics marker.
enum class FileKind { kBench, kTimeline, kUnknown };

FileKind sniffKind(const std::string& path, std::string& error) {
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return FileKind::kUnknown;
    }
    std::string firstLine;
    std::getline(in, firstLine);
    if (firstLine.find("\"g5rMetrics\"") != std::string::npos) return FileKind::kTimeline;
    return FileKind::kBench;
}

bool loadBench(const std::string& path, exp::Json& doc, std::string& error) {
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
        doc = exp::Json::parse(buffer.str());
    } catch (const std::exception& e) {
        error = path + ": " + e.what();
        return false;
    }
    return true;
}

int runDiff(const std::string& basePath, const std::string& curPath,
            const StatsDiffOptions& opts) {
    std::string error;
    const FileKind baseKind = sniffKind(basePath, error);
    if (baseKind == FileKind::kUnknown) {
        std::cerr << "g5r-stats: " << error << '\n';
        return 2;
    }
    const FileKind curKind = sniffKind(curPath, error);
    if (curKind == FileKind::kUnknown) {
        std::cerr << "g5r-stats: " << error << '\n';
        return 2;
    }
    if (baseKind != curKind) {
        std::cerr << "g5r-stats: cannot diff a BENCH document against a timeline\n";
        return 2;
    }

    StatsDiffReport report;
    if (baseKind == FileKind::kBench) {
        exp::Json base, cur;
        if (!loadBench(basePath, base, error) || !loadBench(curPath, cur, error)) {
            std::cerr << "g5r-stats: " << error << '\n';
            return 2;
        }
        report = diffBenchDocuments(base, cur, opts);
    } else {
        try {
            const MetricsTimeline base = readMetricsTimeline(basePath);
            const MetricsTimeline cur = readMetricsTimeline(curPath);
            report = diffTimelines(base, cur, opts);
        } catch (const std::exception& e) {
            std::cerr << "g5r-stats: " << e.what() << '\n';
            return 2;
        }
    }
    std::cout << formatStatsDiffReport(report, basePath, curPath);
    if (!report.comparable) return 2;
    return report.violations.empty() ? 0 : 1;
}

}  // namespace

int statsCliMain(int argc, const char* const* argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];

    if (cmd == "timeline") {
        std::string path, filter;
        std::size_t maxChannels = 32;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--channel") == 0 && i + 1 < argc) {
                filter = argv[++i];
            } else if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
                maxChannels = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
            } else if (argv[i][0] == '-') {
                return usage();
            } else if (path.empty()) {
                path = argv[i];
            } else {
                return usage();
            }
        }
        if (path.empty()) return usage();
        try {
            std::cout << renderTimeline(readMetricsTimeline(path), filter, maxChannels);
        } catch (const std::exception& e) {
            std::cerr << "g5r-stats: " << e.what() << '\n';
            return 2;
        }
        return 0;
    }

    if (cmd == "percentiles") {
        if (argc != 3) return usage();
        const std::string path = argv[2];
        std::string error;
        const FileKind kind = sniffKind(path, error);
        if (kind == FileKind::kUnknown) {
            std::cerr << "g5r-stats: " << error << '\n';
            return 2;
        }
        if (kind == FileKind::kBench) {
            exp::Json doc;
            if (!loadBench(path, doc, error)) {
                std::cerr << "g5r-stats: " << error << '\n';
                return 2;
            }
            std::cout << renderBenchPercentiles(doc);
        } else {
            // Timelines: the percentile channels are first-class; show them.
            try {
                const MetricsTimeline tl = readMetricsTimeline(path);
                for (const std::string& channel : tl.channels()) {
                    const auto tail = channel.rfind('.');
                    const std::string suffix =
                        tail == std::string::npos ? channel : channel.substr(tail);
                    if (suffix != ".p50" && suffix != ".p99" && suffix != ".p999") continue;
                    std::printf("%-64s %14.6g\n", channel.c_str(),
                                tl.finalValue(channel));
                }
            } catch (const std::exception& e) {
                std::cerr << "g5r-stats: " << e.what() << '\n';
                return 2;
            }
        }
        return 0;
    }

    if (cmd == "diff") {
        StatsDiffOptions opts;
        std::string basePath, curPath;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
                opts.defaultThreshold = std::strtod(argv[++i], nullptr);
            } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
                const std::string spec = argv[++i];
                const auto eq = spec.find('=');
                MetricThreshold t;
                if (eq == std::string::npos) {
                    t.match = spec;
                    t.threshold = opts.defaultThreshold;
                } else {
                    t.match = spec.substr(0, eq);
                    t.threshold = std::strtod(spec.c_str() + eq + 1, nullptr);
                }
                opts.perMetric.push_back(std::move(t));
            } else if (argv[i][0] == '-') {
                return usage();
            } else if (basePath.empty()) {
                basePath = argv[i];
            } else if (curPath.empty()) {
                curPath = argv[i];
            } else {
                return usage();
            }
        }
        if (curPath.empty()) return usage();
        return runDiff(basePath, curPath, opts);
    }

    return usage();
}

}  // namespace g5r::obs
