#include "obs/reqtrace.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/json.hh"

namespace g5r::obs {

ReqTraceSession::ReqTraceSession(std::string path, std::string runLabel)
    : path_(std::move(path)), runLabel_(std::move(runLabel)) {
    // File-mode writability is only probed at finish(); until then the
    // session is a pure in-memory collector either way.
    ok_ = true;
}

ReqTraceSession::~ReqTraceSession() { finish(0); }

std::size_t ReqTraceSession::slotFor(ReqId id) {
    if (id >= index_.size()) index_.resize(id + 1, 0);
    if (index_[id] == 0) {
        records_.emplace_back();
        records_.back().id = id;
        index_[id] = records_.size();
    }
    return index_[id] - 1;
}

void ReqTraceSession::onBegin(ReqId id, ReqId parent, const char* kind, Tick when) {
    if (id == 0) return;
    ReqRecord& rec = records_[slotFor(id)];
    rec.parent = parent;
    rec.kind = kind;
    rec.beginTick = when;
}

void ReqTraceSession::onEnd(ReqId id, Tick when) {
    if (id == 0) return;
    ReqRecord& rec = records_[slotFor(id)];
    rec.endTick = when;
    rec.ended = true;
}

void ReqTraceSession::onSpan(ReqId id, ReqStage stage, Tick begin, Tick end) {
    if (id == 0 || end <= begin) return;
    records_[slotFor(id)].spans.push_back(ReqSpan{stage, begin, end});
}

void ReqTraceSession::finish(Tick finalTick) {
    if (finished_) return;
    finished_ = true;

    // Canonicalize: ID-ordered records, (begin, stage, end)-ordered spans.
    // This erases callback-arrival order, which is the only host-order
    // dependent thing about the collection, so the serialized sidecar is
    // identical across --jobs counts and idle-tick gating.
    std::sort(records_.begin(), records_.end(),
              [](const ReqRecord& a, const ReqRecord& b) { return a.id < b.id; });
    for (ReqRecord& rec : records_) {
        std::sort(rec.spans.begin(), rec.spans.end(),
                  [](const ReqSpan& a, const ReqSpan& b) {
                      if (a.begin != b.begin) return a.begin < b.begin;
                      if (a.stage != b.stage) return a.stage < b.stage;
                      return a.end < b.end;
                  });
    }

    if (path_.empty()) return;  // In-memory mode.
    std::ofstream out(path_, std::ios::out | std::ios::trunc);
    ok_ = static_cast<bool>(out);
    if (!ok_) return;

    exp::Json header = exp::Json::object();
    header["g5rReqTrace"] = 1;
    header["schema"] = kSchema;
    header["run"] = runLabel_;
    out << header.dump() << '\n';

    for (const ReqRecord& rec : records_) {
        exp::Json line = exp::Json::object();
        line["id"] = rec.id;
        line["par"] = rec.parent;
        line["kind"] = rec.kind;
        line["b"] = static_cast<std::uint64_t>(rec.beginTick);
        line["e"] = static_cast<std::uint64_t>(rec.ended ? rec.endTick : 0);
        exp::Json spans = exp::Json::array();
        Tick prevBegin = rec.beginTick;
        for (const ReqSpan& span : rec.spans) {
            exp::Json triple = exp::Json::array();
            triple.push(static_cast<std::uint64_t>(span.stage));
            triple.push(static_cast<std::int64_t>(span.begin) -
                        static_cast<std::int64_t>(prevBegin));
            triple.push(static_cast<std::uint64_t>(span.end - span.begin));
            spans.push(std::move(triple));
            prevBegin = span.begin;
        }
        line["spans"] = std::move(spans);
        out << line.dump() << '\n';
    }

    exp::Json footer = exp::Json::object();
    footer["end"] = static_cast<std::uint64_t>(finalTick);
    footer["requests"] = static_cast<std::uint64_t>(records_.size());
    out << footer.dump() << '\n';
    out.flush();
}

// --------------------------------------------------------------- analysis --

namespace {

/// Blame precedence: higher rank wins where spans overlap. Ownership first:
/// a tick inside a DMA descriptor's lifetime is staging (or drain) work no
/// matter which downstream queue the bytes sit in, and an RTL read stalled
/// on an SPM miss is an spmFill tick even while the fill occupies DRAM.
/// Below those owners the deepest shared memory resource wins (dramService
/// over xbarQueue), then the catch-all host/compute windows.
constexpr std::array<int, kNumReqStages> kStageRank = {
    /* hostLoad    */ 1,
    /* dmaStage    */ 6,
    /* spmFill     */ 4,
    /* xbarQueue   */ 2,
    /* dramService */ 3,
    /* rtlCompute  */ 0,
    /* drain       */ 5,
};

struct SweepEvent {
    Tick tick;
    unsigned stage;
    int delta;  ///< +1 span opens, -1 span closes.
};

}  // namespace

BlameSummary computeBlame(const std::vector<ReqRecord>& records) {
    BlameSummary summary;

    // parent -> child record indices. Record IDs can be sparse from the
    // session's point of view, so index by position.
    std::vector<std::vector<std::size_t>> children(records.size());
    std::vector<std::size_t> slotOf;  // id -> index + 1
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ReqId id = records[i].id;
        if (id >= slotOf.size()) slotOf.resize(id + 1, 0);
        slotOf[id] = i + 1;
    }
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ReqId parent = records[i].parent;
        if (parent != 0 && parent < slotOf.size() && slotOf[parent] != 0) {
            children[slotOf[parent] - 1].push_back(i);
        } else {
            roots.push_back(i);
        }
    }

    for (const std::size_t rootIdx : roots) {
        const ReqRecord& root = records[rootIdx];
        RequestBlame blame;
        blame.id = root.id;
        blame.kind = root.kind;
        blame.begin = root.beginTick;

        // Collect the subtree's spans and the effective end: the explicit
        // end if every piece of work finished before it, else the last
        // subtree activity (a run cut short mid-request still attributes
        // the ticks it simulated).
        std::vector<SweepEvent> events;
        Tick effectiveEnd = root.ended ? root.endTick : root.beginTick;
        std::vector<std::size_t> stack{rootIdx};
        while (!stack.empty()) {
            const std::size_t idx = stack.back();
            stack.pop_back();
            const ReqRecord& rec = records[idx];
            if (rec.ended && rec.endTick > effectiveEnd) effectiveEnd = rec.endTick;
            for (const ReqSpan& span : rec.spans) {
                if (span.end > effectiveEnd) effectiveEnd = span.end;
            }
            for (const std::size_t child : children[idx]) stack.push_back(child);
        }
        stack.push_back(rootIdx);
        while (!stack.empty()) {
            const std::size_t idx = stack.back();
            stack.pop_back();
            for (const ReqSpan& span : records[idx].spans) {
                const Tick b = std::max(span.begin, blame.begin);
                const Tick e = std::min(span.end, effectiveEnd);
                if (e <= b) continue;
                const auto stage = static_cast<unsigned>(span.stage);
                events.push_back(SweepEvent{b, stage, +1});
                events.push_back(SweepEvent{e, stage, -1});
            }
            for (const std::size_t child : children[idx]) stack.push_back(child);
        }
        blame.end = effectiveEnd;

        // Sweep line over [begin, effectiveEnd]: within each elementary
        // interval the highest-ranked open stage takes the blame; with no
        // open span the ticks are unattributed.
        std::sort(events.begin(), events.end(), [](const SweepEvent& a, const SweepEvent& b) {
            return a.tick < b.tick;
        });
        std::array<int, kNumReqStages> open{};
        Tick cursor = blame.begin;
        std::size_t i = 0;
        auto accumulate = [&](Tick upTo) {
            if (upTo <= cursor) return;
            int best = -1;
            for (unsigned s = 0; s < kNumReqStages; ++s) {
                if (open[s] > 0 && (best < 0 || kStageRank[s] > kStageRank[best])) {
                    best = static_cast<int>(s);
                }
            }
            const Tick len = upTo - cursor;
            if (best >= 0) {
                blame.stageTicks[static_cast<std::size_t>(best)] += len;
            } else {
                blame.unattributed += len;
            }
            cursor = upTo;
        };
        while (i < events.size()) {
            accumulate(std::min(events[i].tick, effectiveEnd));
            const Tick t = events[i].tick;
            while (i < events.size() && events[i].tick == t) {
                open[events[i].stage] += events[i].delta;
                ++i;
            }
        }
        accumulate(effectiveEnd);

        for (unsigned s = 0; s < kNumReqStages; ++s) summary.stageTicks[s] += blame.stageTicks[s];
        summary.unattributed += blame.unattributed;
        summary.totalTicks += blame.total();
        summary.roots.push_back(std::move(blame));
    }
    return summary;
}

// ---------------------------------------------------------------- reading --

ReqTraceFile readReqTrace(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open request trace: " + path);

    ReqTraceFile file;
    std::string lineText;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(in, lineText)) {
        ++lineNo;
        if (lineText.empty()) continue;
        exp::Json line;
        try {
            line = exp::Json::parse(lineText);
        } catch (const std::exception& e) {
            std::ostringstream err;
            err << path << ":" << lineNo << ": bad JSONL line: " << e.what();
            throw std::runtime_error(err.str());
        }
        if (!sawHeader) {
            if (!line.isObject() || !line.contains("g5rReqTrace")) {
                throw std::runtime_error(path + ": not a g5r request trace (bad header)");
            }
            file.schema = static_cast<int>(line.at("schema").asInt());
            if (line.contains("run")) file.run = line.at("run").asString();
            sawHeader = true;
            continue;
        }
        if (line.contains("id")) {
            ReqRecord rec;
            rec.id = static_cast<ReqId>(line.at("id").asInt());
            rec.parent = static_cast<ReqId>(line.at("par").asInt());
            rec.kind = line.at("kind").asString();
            rec.beginTick = static_cast<Tick>(line.at("b").asInt());
            rec.endTick = static_cast<Tick>(line.at("e").asInt());
            rec.ended = rec.endTick != 0;
            Tick prevBegin = rec.beginTick;
            for (const exp::Json& triple : line.at("spans").items()) {
                const auto& parts = triple.items();
                const auto stage = static_cast<ReqStage>(parts.at(0).asInt());
                const Tick begin = static_cast<Tick>(static_cast<std::int64_t>(prevBegin) +
                                                     parts.at(1).asInt());
                const Tick dur = static_cast<Tick>(parts.at(2).asInt());
                rec.spans.push_back(ReqSpan{stage, begin, begin + dur});
                prevBegin = begin;
            }
            file.records.push_back(std::move(rec));
        } else if (line.contains("end")) {
            file.endTick = static_cast<Tick>(line.at("end").asInt());
            if (line.contains("requests")) {
                file.declaredRequests = static_cast<std::uint64_t>(line.at("requests").asInt());
            }
        }
    }
    if (!sawHeader) throw std::runtime_error(path + ": empty request trace");
    return file;
}

}  // namespace g5r::obs
