// g5r-critpath: critical-path stage blame over .reqtrace.jsonl sidecars.
// All logic lives in obs/critpath_cli.{hh,cc} so tests can call it directly.
#include "obs/critpath_cli.hh"

int main(int argc, char** argv) { return g5r::obs::critpathCliMain(argc, argv); }
