// obs::ReqTraceSession — request-level causal tracing.
//
// Components that own a logical unit of work (an NVDLA job, a DMA
// descriptor, a PMU script) allocate a ReqId from their Simulation, report
// requestBegin/requestEnd through the SimObserver channel, and tag the
// packets they build with the ID. Components the work flows *through* (SPM
// fills, crossbar layers, DRAM channels) report stage spans against
// whatever ID the packet carries. The session collects the resulting span
// trees — all in simulated ticks — and serializes them to a .reqtrace.jsonl
// sidecar.
//
// Format (one JSON document per line):
//
//   header   {"g5rReqTrace":1,"schema":1,"run":"<label>"}
//   request  {"id":N,"par":P,"kind":"<kind>","b":<tick>,"e":<tick>,
//             "spans":[[<stageIdx>,<beginDelta>,<durTicks>],...]}
//   footer   {"end":<tick>,"requests":<count>}
//
// Requests are written in ID order; spans are sorted by (begin, stage, end)
// and their begin ticks delta-encoded (first against the request's "b",
// then against the previous span's begin). Nothing host-dependent is ever
// written and the canonical sort erases callback-arrival order, so sidecars
// of the same run are byte-identical at any --jobs count and across
// idle-tick gating (spans carry simulated time only). "e" is 0 for a
// request that never saw requestEnd (run cut short); the analysis derives
// an effective end from the span tree.
//
// The critical-path analysis (computeBlame) attributes every tick of a root
// request's [begin, effectiveEnd] window to exactly one stage: overlapping
// spans across the root's subtree are resolved by a fixed precedence
// (dmaStage > drain > spmFill > dramService > xbarQueue > hostLoad >
// rtlCompute — work owner first, then deepest shared memory resource), and
// uncovered ticks land in an "unattributed" bucket, so per-stage shares sum
// to exactly 100% of end-to-end ticks by construction.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/observer.hh"
#include "sim/ticks.hh"

namespace g5r::obs {

/// One stage interval of a request, in simulated ticks.
struct ReqSpan {
    ReqStage stage;
    Tick begin;
    Tick end;
};

/// One request's collected lifecycle.
struct ReqRecord {
    ReqId id = 0;
    ReqId parent = 0;          ///< 0 = root.
    std::string kind;          ///< "nvdlaJob", "dmaPrefetch", ...
    Tick beginTick = 0;
    Tick endTick = 0;          ///< 0 until requestEnd (see header comment).
    bool ended = false;
    std::vector<ReqSpan> spans;
};

class ReqTraceSession {
public:
    /// Sidecar format version, written into the header line.
    static constexpr int kSchema = 1;

    /// Open @p path for writing at finish(). An empty path selects
    /// in-memory mode: records are kept (data()) but no file is written —
    /// the DSE harness uses this to compute stage blame without sidecars.
    /// An unopenable path degrades to ok()==false; records are still kept.
    ReqTraceSession(std::string path, std::string runLabel);
    ~ReqTraceSession();
    ReqTraceSession(const ReqTraceSession&) = delete;
    ReqTraceSession& operator=(const ReqTraceSession&) = delete;

    bool ok() const { return ok_; }
    const std::string& path() const { return path_; }
    std::uint64_t requestsRecorded() const { return records_.size(); }

    /// Observer-channel entry points (forwarded by ObsSession).
    void onBegin(ReqId id, ReqId parent, const char* kind, Tick when);
    void onEnd(ReqId id, Tick when);
    void onSpan(ReqId id, ReqStage stage, Tick begin, Tick end);

    /// Sort records canonically and (in file mode) write the sidecar.
    /// Idempotent; also run by the destructor.
    void finish(Tick finalTick);

    /// The collected records, canonical after finish(). Valid in both file
    /// and in-memory mode.
    const std::vector<ReqRecord>& data() const { return records_; }

private:
    std::size_t slotFor(ReqId id);

    std::string path_;
    std::string runLabel_;
    bool ok_ = false;
    bool finished_ = false;
    std::vector<ReqRecord> records_;
    std::vector<std::size_t> index_;  ///< id -> slot + 1 (0 = absent).
};

// --------------------------------------------------------------- analysis --

/// Stage attribution of one root request's end-to-end window.
struct RequestBlame {
    ReqId id = 0;
    std::string kind;
    Tick begin = 0;
    Tick end = 0;    ///< Effective end (explicit end or last subtree span).
    std::array<Tick, kNumReqStages> stageTicks{};
    Tick unattributed = 0;

    Tick total() const { return end - begin; }
};

/// Aggregate over all roots of a trace.
struct BlameSummary {
    std::vector<RequestBlame> roots;
    std::array<Tick, kNumReqStages> stageTicks{};
    Tick unattributed = 0;
    Tick totalTicks = 0;  ///< Sum of root end-to-end windows.
};

/// Attribute every root's window to stages (see header comment for the
/// precedence rule). Invariant: for each root, sum(stageTicks) +
/// unattributed == total(); the aggregate inherits it.
BlameSummary computeBlame(const std::vector<ReqRecord>& records);

// ---------------------------------------------------------------- reading --

/// A fully parsed .reqtrace.jsonl sidecar.
struct ReqTraceFile {
    int schema = 0;
    std::string run;
    Tick endTick = 0;
    std::uint64_t declaredRequests = 0;  ///< From the footer.
    std::vector<ReqRecord> records;
};

/// Parse a sidecar written by ReqTraceSession. Throws std::runtime_error on
/// unreadable files or malformed lines.
ReqTraceFile readReqTrace(const std::string& path);

}  // namespace g5r::obs
