// RtlModel: the simulator-side handle to an RTL model behind the C ABI.
//
// Two concrete forms:
//   * ApiRtlModel wraps an in-process G5rRtlModelApi table (unit tests, or
//     statically linked models).
//   * SharedLibModel dlopen()s a model library at runtime — the deployment
//     the paper describes, where gem5 is compiled independently of the
//     Verilator/GHDL toolflows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bridge/rtl_api.h"

namespace g5r {

class RtlModel {
public:
    virtual ~RtlModel() = default;

    virtual const char* modelName() const = 0;
    virtual void reset() = 0;
    virtual void tick(const G5rRtlInput& in, G5rRtlOutput& out) = 0;
    virtual bool traceStart(const std::string& vcdPath) = 0;
    virtual void traceStop() = 0;

    /// ABI revision the model was built against. In-process models are by
    /// definition current; ApiRtlModel reports the loaded table's version.
    virtual std::uint32_t abiVersion() const { return G5R_RTL_ABI_VERSION; }

    /// Whether G5rRtlOutput::idle_hint is meaningful for this model. The
    /// bridge never gates ticks of a pre-v2 model (the field did not exist,
    /// so a stale non-zero byte must not be trusted).
    bool supportsIdleHint() const { return abiVersion() >= G5R_RTL_ABI_IDLE_HINT; }
};

/// Wraps an API table + instance without owning any library handle.
class ApiRtlModel : public RtlModel {
public:
    /// Throws std::runtime_error on ABI mismatch or failed create().
    ApiRtlModel(const G5rRtlModelApi* api, const std::string& config);
    ~ApiRtlModel() override;
    ApiRtlModel(const ApiRtlModel&) = delete;
    ApiRtlModel& operator=(const ApiRtlModel&) = delete;

    const char* modelName() const override { return api_->name; }
    std::uint32_t abiVersion() const override { return api_->abi_version; }
    void reset() override { api_->reset(instance_); }
    void tick(const G5rRtlInput& in, G5rRtlOutput& out) override {
        api_->tick(instance_, &in, &out);
    }
    bool traceStart(const std::string& vcdPath) override {
        return api_->trace_start != nullptr &&
               api_->trace_start(instance_, vcdPath.c_str()) == 0;
    }
    void traceStop() override {
        if (api_->trace_stop != nullptr) api_->trace_stop(instance_);
    }

private:
    const G5rRtlModelApi* api_;
    void* instance_;
};

/// Loads a model shared library (dlopen) and instantiates the model.
class SharedLibModel final : public ApiRtlModel {
public:
    /// Throws std::runtime_error when the library or symbol is missing.
    static std::unique_ptr<SharedLibModel> load(const std::string& libraryPath,
                                                const std::string& config);
    ~SharedLibModel() override;

private:
    SharedLibModel(void* dlHandle, const G5rRtlModelApi* api, const std::string& config);
    void* dlHandle_;
};

}  // namespace g5r
