// TLB object for RTL-model address translation.
//
// The paper's RTLObject can "connect to a TLB object for address
// translation ... an existing object in the SoC or one specifically added to
// be used by the integrated RTL model". This TLB holds page mappings with a
// small fully-associative cached subset; lookups that miss the cached
// entries still translate (a page walk is not modelled as latency, matching
// the paper's decision to bypass the IOMMU) but are counted, so integration
// studies can see the model's TLB pressure.
#pragma once

#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace g5r {

class Tlb : public SimObject {
public:
    static constexpr unsigned kPageShift = 12;

    Tlb(Simulation& sim, std::string name, unsigned cachedEntries = 64)
        : SimObject(sim, std::move(name)),
          entries_(cachedEntries),
          lookups_(stats_.scalar("lookups", "translations requested")),
          hits_(stats_.scalar("hits", "translations served by cached entries")),
          identityFallbacks_(stats_.scalar("identityFallbacks",
                                           "lookups with no mapping (identity)")) {}

    /// Install a virtual -> physical mapping covering [va, va+bytes).
    void map(Addr va, Addr pa, std::uint64_t bytes) {
        if (bytes == 0) return;  // Empty range; va+bytes-1 would underflow.
        const Addr firstPage = va >> kPageShift;
        const Addr lastPage = (va + bytes - 1) >> kPageShift;
        for (Addr page = firstPage; page <= lastPage; ++page) {
            pageTable_[page] = (pa >> kPageShift) + (page - firstPage);
        }
        // Drop cached copies of the remapped pages so stale translations
        // can't outlive the page table update.
        for (auto& e : entries_) {
            if (e.valid && e.vpage >= firstPage && e.vpage <= lastPage) {
                e = Entry{};
            }
        }
    }

    /// Translate; unmapped addresses pass through unchanged (identity),
    /// which is the paper's IOMMU-bypass behaviour.
    Addr translate(Addr va) {
        ++lookups_;
        const Addr page = va >> kPageShift;
        const Addr offset = va & ((Addr{1} << kPageShift) - 1);

        for (auto& e : entries_) {
            if (e.valid && e.vpage == page) {
                ++hits_;
                e.lastUsed = ++lru_;
                return (e.ppage << kPageShift) | offset;
            }
        }

        const auto it = pageTable_.find(page);
        if (it == pageTable_.end()) {
            ++identityFallbacks_;
            return va;
        }
        // Refill the LRU cached entry (if caching is enabled at all).
        if (!entries_.empty()) {
            Entry* victim = &entries_[0];
            for (auto& e : entries_) {
                if (!e.valid) {
                    victim = &e;
                    break;
                }
                if (e.lastUsed < victim->lastUsed) victim = &e;
            }
            *victim = Entry{page, it->second, true, ++lru_};
        }
        return (it->second << kPageShift) | offset;
    }

    std::size_t mappedPages() const { return pageTable_.size(); }

private:
    struct Entry {
        Addr vpage = 0;
        Addr ppage = 0;
        bool valid = false;
        std::uint64_t lastUsed = 0;
    };

    std::unordered_map<Addr, Addr> pageTable_;
    std::vector<Entry> entries_;
    std::uint64_t lru_ = 0;

    stats::Scalar& lookups_;
    stats::Scalar& hits_;
    stats::Scalar& identityFallbacks_;
};

}  // namespace g5r
