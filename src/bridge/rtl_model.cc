#include "bridge/rtl_model.hh"

#include <dlfcn.h>

#include <stdexcept>

namespace g5r {

ApiRtlModel::ApiRtlModel(const G5rRtlModelApi* api, const std::string& config) : api_(api) {
    if (api_ == nullptr) throw std::runtime_error("null RTL model API table");
    if (api_->abi_version < G5R_RTL_ABI_VERSION_MIN ||
        api_->abi_version > G5R_RTL_ABI_VERSION) {
        throw std::runtime_error(std::string{"RTL model '"} + api_->name +
                                 "' built against ABI v" + std::to_string(api_->abi_version) +
                                 ", simulator accepts v" +
                                 std::to_string(G5R_RTL_ABI_VERSION_MIN) + "..v" +
                                 std::to_string(G5R_RTL_ABI_VERSION));
    }
    instance_ = api_->create(config.c_str());
    if (instance_ == nullptr) {
        throw std::runtime_error(std::string{"RTL model '"} + api_->name +
                                 "' create() failed (config: " + config + ")");
    }
}

ApiRtlModel::~ApiRtlModel() {
    if (instance_ != nullptr) api_->destroy(instance_);
}

SharedLibModel::SharedLibModel(void* dlHandle, const G5rRtlModelApi* api,
                               const std::string& config)
    : ApiRtlModel(api, config), dlHandle_(dlHandle) {}

std::unique_ptr<SharedLibModel> SharedLibModel::load(const std::string& libraryPath,
                                                     const std::string& config) {
    void* handle = ::dlopen(libraryPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        throw std::runtime_error("dlopen failed for " + libraryPath + ": " + ::dlerror());
    }
    auto getApi = reinterpret_cast<G5rRtlGetApiFn>(::dlsym(handle, G5R_RTL_GET_API_SYMBOL));
    if (getApi == nullptr) {
        ::dlclose(handle);
        throw std::runtime_error(libraryPath + " does not export " G5R_RTL_GET_API_SYMBOL);
    }
    try {
        return std::unique_ptr<SharedLibModel>(
            new SharedLibModel(handle, getApi(), config));
    } catch (...) {
        ::dlclose(handle);
        throw;
    }
}

SharedLibModel::~SharedLibModel() {
    // The ApiRtlModel destructor (instance destroy) runs after this body;
    // unloading the library first would leave it calling into unmapped code.
    // Leak the handle intentionally at process scope instead of dlclosing
    // here — models are loaded once per simulation and live for its whole
    // duration, matching how gem5+rtl keeps the library resident.
}

}  // namespace g5r
