#include "bridge/rtl_object.hh"

#include <cstring>

namespace g5r {

RtlObject::RtlObject(Simulation& sim, std::string objName, const RtlObjectParams& params,
                     std::unique_ptr<RtlModel> model, HwEventBus* eventBus, Tlb* tlb)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      model_(std::move(model)),
      eventBus_(eventBus),
      tlb_(tlb),
      // kRtlTick runs after every same-tick packet delivery and event pulse,
      // so a tick rescheduled by wake() samples exactly the state a
      // free-running tick at the same edge would — the property that makes
      // idle gating timing-neutral.
      tickEvent_([this] { tick(); }, name() + ".tick", EventPriority::kRtlTick),
      statTicks_(stats_.scalar("ticks", "RTL clock ticks delivered to the model")),
      statDevReads_(stats_.scalar("devReads", "device-channel reads")),
      statDevWrites_(stats_.scalar("devWrites", "device-channel writes")),
      statMemReads_(stats_.scalar("memReads", "model memory read requests")),
      statMemWrites_(stats_.scalar("memWrites", "model memory write requests")),
      statBytesRead_(stats_.scalar("bytesRead", "bytes read by the model")),
      statBytesWritten_(stats_.scalar("bytesWritten", "bytes written by the model")),
      statZeroCreditTicks_(stats_.scalar("zeroCreditTicks",
                                         "ticks with no in-flight credits available")),
      statGatedTicks_(stats_.scalar("gatedTicks",
                                    "RTL cycles skipped while quiescence-gated")),
      statIrqEdges_(stats_.scalar("irqEdges", "interrupt line level changes")),
      statOutstanding_(stats_.distribution("outstanding",
                                           "outstanding memory requests per tick")),
      statOutstandingHist_(stats_.histogram(
          "outstandingHist", "outstanding memory requests histogram (quantiles)")),
      statDevQueueHist_(stats_.histogram(
          "devQueueHist", "device-queue depth histogram (quantiles)")) {
    // Busy fraction of elapsed RTL cycles: ticks actually delivered over
    // ticks delivered plus ticks skipped while quiescence-gated. 0 before
    // the first tick; 1.0 exactly when gating never engaged.
    stats_.formula("dutyCycle", "delivered / (delivered + gated) RTL cycles", [this] {
        const double busy = statTicks_.value();
        const double total = busy + statGatedTicks_.value();
        return total > 0.0 ? busy / total : 0.0;
    });
    simAssert(model_ != nullptr, "RtlObject needs a model");
    for (unsigned i = 0; i < kNumCpuSidePorts; ++i) {
        cpuPorts_[i] = std::make_unique<CpuSidePort>(
            name() + ".cpu_side" + std::to_string(i), *this, i);
    }
    for (unsigned i = 0; i < kNumMemSidePorts; ++i) {
        memPorts_[i] = std::make_unique<MemSidePort>(
            name() + ".mem_side" + std::to_string(i), *this, i);
    }
    if (eventBus_ != nullptr) {
        eventBus_->addWakeCallback([this] { wake(); });
    }
}

RtlObject::~RtlObject() = default;

ResponsePort& RtlObject::cpuSidePort(unsigned idx) {
    simAssert(idx < kNumCpuSidePorts, "cpu-side port index out of range");
    return *cpuPorts_[idx];
}

RequestPort& RtlObject::memSidePort(unsigned idx) {
    simAssert(idx < kNumMemSidePorts, "mem-side port index out of range");
    return *memPorts_[idx];
}

void RtlObject::startup() {
    model_->reset();
    eventQueue().schedule(tickEvent_, clockEdge());
}

// ------------------------------------------------------------ device side --

bool RtlObject::recvDevReq(unsigned portIdx, PacketPtr& pkt) {
    wake();
    if (devQueue_.size() >= params_.devQueueDepth) {
        needDevRetry_[portIdx] = true;
        return false;
    }
    devQueue_.push_back(DevReq{portIdx, std::move(pkt)});
    return true;
}

void RtlObject::devFunctional(Packet&) {
    // Device registers have no functional backing store outside the model;
    // functional probes of RTL state are not supported (as in the paper,
    // where the RTL model is only reachable through its ports).
}

void RtlObject::sendDevResponses() {
    for (unsigned i = 0; i < kNumCpuSidePorts; ++i) {
        auto& queue = respQueues_[i];
        while (!respBlocked_[i] && !queue.empty()) {
            PacketPtr& pkt = queue.front();
            if (!cpuPorts_[i]->sendTimingResp(pkt)) {
                respBlocked_[i] = true;
                break;
            }
            queue.pop_front();
        }
    }
}

// Offer retries to ports that were refused, as soon as (and only while) the
// device queue has room. Retries used to be coupled to a *response* going
// out on the same port, which starved a port whose refused request never got
// a response-producing predecessor: queue space freed at accept time in
// tick(), but the retry waiting on port 1 never fired if the draining
// traffic belonged to port 0. sendReqRetry() may synchronously re-enter
// recvDevReq and refill the queue, hence the capacity re-check per port.
void RtlObject::sendDevRetries() {
    for (unsigned i = 0; i < kNumCpuSidePorts; ++i) {
        if (devQueue_.size() >= params_.devQueueDepth) return;
        if (needDevRetry_[i]) {
            needDevRetry_[i] = false;
            cpuPorts_[i]->sendReqRetry();
        }
    }
}

// ------------------------------------------------------------ memory side --

bool RtlObject::recvMemResp(PacketPtr& pkt) {
    wake();
    const auto it = pktToModelId_.find(pkt->id());
    simAssert(it != pktToModelId_.end(), "memory response with no model mapping");
    ModelResp resp;
    resp.id = it->second;
    resp.data.fill(0);
    if (pkt->cmd() == MemCmd::kReadResp) {
        std::memcpy(resp.data.data(), pkt->constData(),
                    std::min<std::size_t>(pkt->size(), resp.data.size()));
    }
    pktToModelId_.erase(it);
    modelRespQueue_.push_back(resp);
    simAssert(outstanding_ > 0, "response underflow");
    --outstanding_;
    pkt.reset();
    return true;
}

void RtlObject::sendMemRequests() {
    for (unsigned i = 0; i < kNumMemSidePorts; ++i) {
        auto& queue = memSendQueues_[i];
        while (!memBlocked_[i] && !queue.empty()) {
            PacketPtr& pkt = queue.front();
            if (!memPorts_[i]->sendTimingReq(pkt)) {
                memBlocked_[i] = true;
                break;
            }
            queue.pop_front();
        }
    }
}

void RtlObject::issueModelRequests(const G5rRtlOutput& out) {
    const unsigned count = std::min<unsigned>(out.mem_req_count, G5R_RTL_MAX_MEM_REQ);
    for (unsigned i = 0; i < count; ++i) {
        const G5rRtlMemReq& req = out.mem_req[i];
        simAssert(outstanding_ < params_.maxInflight,
                  "model exceeded its in-flight credit grant");
        const unsigned size = std::min<unsigned>(req.size, G5R_RTL_MEM_DATA_BYTES);
        Addr addr = req.addr;
        if (params_.translate && tlb_ != nullptr) addr = tlb_->translate(addr);

        PacketPtr pkt;
        if (req.write != 0) {
            pkt = makeWritePacket(addr, size);
            std::memcpy(pkt->data(), req.data, size);
            ++statMemWrites_;
            statBytesWritten_ += size;
        } else {
            pkt = makeReadPacket(addr, size);
            ++statMemReads_;
            statBytesRead_ += size;
        }
        pkt->setIssueTick(curTick());
        pkt->setReqId(curReq_);

        // Route port-1 traffic to port 0 when SRAMIF is not separately bound
        // (the paper's configuration sends both interfaces to main memory).
        unsigned portIdx = req.port < kNumMemSidePorts ? req.port : 0;
        if (!memPorts_[portIdx]->isBound()) portIdx = 0;

        pktToModelId_[pkt->id()] = req.id;
        ++outstanding_;
        memSendQueues_[portIdx].push_back(std::move(pkt));
    }
    sendMemRequests();
}

// ------------------------------------------------------------------- tick --

void RtlObject::tick() {
    G5rRtlInput in{};
    G5rRtlOutput out{};

    // Present the oldest queued device beat (one outstanding device read at
    // a time, as befits a low-bandwidth config interface).
    devPresented_ = false;
    if (!devReadPending_.has_value() && !devQueue_.empty()) {
        const DevReq& dev = devQueue_.front();
        in.dev_valid = 1;
        in.dev_write = dev.pkt->isWrite() ? 1 : 0;
        in.dev_addr = dev.pkt->addr();
        if (dev.pkt->isWrite()) {
            std::uint64_t wdata = 0;
            std::memcpy(&wdata, dev.pkt->constData(),
                        std::min<std::size_t>(dev.pkt->size(), sizeof(wdata)));
            in.dev_wdata = wdata;
        }
        devPresented_ = true;
    }

    // Deliver at most one memory response per RTL tick.
    if (!modelRespQueue_.empty()) {
        const ModelResp& resp = modelRespQueue_.front();
        in.mem_resp_valid = 1;
        in.mem_resp_id = resp.id;
        std::memcpy(in.mem_resp_data, resp.data.data(), resp.data.size());
    }

    const unsigned creditsLeft =
        params_.maxInflight > outstanding_ ? params_.maxInflight - outstanding_ : 0;
    in.mem_req_credits = std::min<unsigned>(creditsLeft, G5R_RTL_MAX_MEM_REQ);
    if (creditsLeft == 0) ++statZeroCreditTicks_;

    if (eventBus_ != nullptr) {
        const auto pulses = eventBus_->drain();
        std::memcpy(in.events, pulses.data(), sizeof(in.events));
    }

    model_->tick(in, out);
    ++statTicks_;
    statOutstanding_.sample(static_cast<double>(outstanding_));
    statOutstandingHist_.sampleInt(outstanding_);
    statDevQueueHist_.sampleInt(devQueue_.size());

    // Device handshake resolution. Accepting a beat frees queue space, so
    // refused ports get their retry here (see sendDevRetries).
    if (devPresented_ && out.dev_ready != 0) {
        DevReq dev = std::move(devQueue_.front());
        devQueue_.pop_front();
        if (dev.pkt->isWrite()) {
            ++statDevWrites_;
            if (dev.pkt->reqId() != 0) curReq_ = dev.pkt->reqId();
            if (dev.pkt->needsResponse()) {
                dev.pkt->makeResponse();
                respQueues_[dev.port].push_back(std::move(dev.pkt));
            }
        } else {
            ++statDevReads_;
            devReadPending_ = std::move(dev);
        }
    }
    if (out.dev_resp_valid != 0 && devReadPending_.has_value()) {
        DevReq dev = std::move(*devReadPending_);
        devReadPending_.reset();
        dev.pkt->set<std::uint64_t>(out.dev_rdata);
        dev.pkt->makeResponse();
        respQueues_[dev.port].push_back(std::move(dev.pkt));
    }
    if (in.mem_resp_valid != 0) modelRespQueue_.pop_front();

    sendDevRetries();
    issueModelRequests(out);
    sendDevResponses();

    const bool irqNow = out.irq != 0;
    if (irqNow != irqLevel_) {
        irqLevel_ = irqNow;
        ++statIrqEdges_;
        if (irqCallback_) irqCallback_(irqNow);
    }
    if (out.done != 0 && !done_) {
        done_ = true;
        if (params_.exitOnDone) sim_.exitSimLoop(name() + ": model done");
    }

    if (canGate(out)) {
        gated_ = true;
        gatedAtEdge_ = clockEdge(1);
    } else {
        eventQueue().schedule(tickEvent_, clockEdge(1));
    }
}

// The tick event may be descheduled only when skipping cycles is provably
// invisible: the model promises its state is insensitive to idle cycles
// (idle_hint, meaningful from ABI v2 on) and the bridge holds nothing that
// would feed the model on a future tick. Every input source that could end
// the idle stretch has a wake hook: recvDevReq, recvMemResp, and the event
// bus's empty->non-empty callback. Spurious wakes are harmless (an ungated
// bridge ticks every cycle anyway); only a missed wake could diverge.
bool RtlObject::canGate(const G5rRtlOutput& out) const {
    if (!params_.gateIdleTicks || out.idle_hint == 0 || !model_->supportsIdleHint())
        return false;
    if (!devQueue_.empty() || devReadPending_.has_value()) return false;
    if (!modelRespQueue_.empty() || outstanding_ != 0) return false;
    for (const auto& q : respQueues_)
        if (!q.empty()) return false;
    for (const auto& q : memSendQueues_)
        if (!q.empty()) return false;
    if (eventBus_ != nullptr && eventBus_->hasPending()) return false;
    return true;
}

void RtlObject::wake() {
    if (!gated_) return;
    gated_ = false;
    // Never before the edge the descheduled tick would have run at; at the
    // next edge not yet passed otherwise. kRtlTick priority puts the tick
    // after this wake's cause, so it samples the delivered input. One
    // asymmetry: when the dispatch position has already moved past this
    // edge's tick slot — an ungated twin's tick at this very edge would
    // have fired by now — a stimulus injected afterwards (an embedder
    // poking the bus between run() slices, or issuing at an edge the run
    // bound already closed) must be sampled at the *next* edge instead.
    Tick edge = clockEdge();
    if (eventQueue().hasPassed(edge, static_cast<int>(EventPriority::kRtlTick))) {
        edge += clockPeriod();
    }
    edge = std::max(edge, gatedAtEdge_);
    statGatedTicks_ += static_cast<double>((edge - gatedAtEdge_) / clockPeriod());
    eventQueue().schedule(tickEvent_, edge);
}

}  // namespace g5r
