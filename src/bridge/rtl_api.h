/*
 * The shared-library ABI between the simulator and RTL models.
 *
 * This is the boundary the paper draws in Figure 1: the RTL model (Verilator
 * C++ or GHDL output) plus its wrapper live in a shared library; gem5 links
 * against none of it and exchanges plain data structs once per RTL clock
 * tick. Keeping this header pure C guarantees a stable ABI regardless of the
 * C++ toolchains either side was built with, which is exactly why the paper
 * uses a shared library: the simulator never needs recompiling when a model
 * (or the RTL toolflow that produced it) changes.
 *
 * Per tick, the simulator passes a G5rRtlInput (device-channel beat, one
 * memory response, in-flight credits, sideband event pulses) and receives a
 * G5rRtlOutput (device ready/response, new memory requests, interrupt level,
 * done flag, idle hint).
 *
 * ABI versioning: v2 appends the idle_hint field to G5rRtlOutput. The v1
 * prefix of both structs is unchanged, so the simulator still loads v1
 * libraries (G5R_RTL_ABI_VERSION_MIN): the caller zero-fills the output
 * struct before every tick and additionally ignores idle_hint for any model
 * that reports abi_version < 2, so a v1 model is simply never idle.
 */
#ifndef G5R_BRIDGE_RTL_API_H
#define G5R_BRIDGE_RTL_API_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define G5R_RTL_ABI_VERSION 2u
/* Oldest model ABI the simulator still accepts. */
#define G5R_RTL_ABI_VERSION_MIN 1u
/* First ABI revision whose G5rRtlOutput carries idle_hint. */
#define G5R_RTL_ABI_IDLE_HINT 2u
#define G5R_RTL_MAX_MEM_REQ 8u
#define G5R_RTL_MEM_DATA_BYTES 64u
#define G5R_RTL_NUM_EVENT_LINES 32u

/* One memory request emitted by the model (AXI-style, up to one line). */
typedef struct G5rRtlMemReq {
    uint64_t id;      /* model-chosen tag, echoed in the response */
    uint64_t addr;
    uint8_t write;    /* 1 = write, 0 = read */
    uint8_t port;     /* 0 = primary (DBBIF-style), 1 = secondary (SRAMIF) */
    uint16_t size;    /* bytes, 1..G5R_RTL_MEM_DATA_BYTES */
    uint8_t data[G5R_RTL_MEM_DATA_BYTES]; /* write payload */
} G5rRtlMemReq;

/* Everything the model consumes on one RTL clock tick. */
typedef struct G5rRtlInput {
    /* Device/config channel (CSB / AXI-Lite style), one beat per tick. */
    uint8_t dev_valid;
    uint8_t dev_write;
    uint64_t dev_addr;
    uint64_t dev_wdata;

    /* At most one memory response per tick. */
    uint8_t mem_resp_valid;
    uint64_t mem_resp_id;
    uint8_t mem_resp_data[G5R_RTL_MEM_DATA_BYTES];

    /* How many new memory requests the model may emit this tick. The
     * RTLObject computes this from its max-in-flight parameter — the knob
     * swept in the paper's Figures 6 and 7. */
    uint32_t mem_req_credits;

    /* Sideband event pulses accumulated since the previous tick. */
    uint32_t events[G5R_RTL_NUM_EVENT_LINES];
} G5rRtlInput;

/* Everything the model produces on one RTL clock tick. */
typedef struct G5rRtlOutput {
    uint8_t dev_ready;       /* consumed this tick's device beat */
    uint8_t dev_resp_valid;  /* read data available */
    uint64_t dev_rdata;

    uint32_t mem_req_count;  /* <= G5R_RTL_MAX_MEM_REQ and <= credits */
    G5rRtlMemReq mem_req[G5R_RTL_MAX_MEM_REQ];

    uint8_t irq;   /* interrupt line level */
    uint8_t done;  /* model-defined completion flag */

    /* v2: quiescence hint. Non-zero promises that, given only idle cycles
     * (no device beat, no memory response, no event pulses), the model's
     * architecturally visible state and outputs do not change, so the
     * simulator may skip delivering clock ticks until external input
     * arrives. A model that counts cycles (e.g. a PMU with any counter
     * enabled) or has in-flight work must keep this 0. Models must also
     * keep it 0 while waveform tracing is active, since skipped cycles
     * would otherwise be missing from the dump. */
    uint8_t idle_hint;
} G5rRtlOutput;

/* The function table a model shared library exposes. */
typedef struct G5rRtlModelApi {
    uint32_t abi_version;  /* in [G5R_RTL_ABI_VERSION_MIN, G5R_RTL_ABI_VERSION] */
    const char* name;

    /* config is a model-specific string (e.g. a trace file path). */
    void* (*create)(const char* config);
    void (*destroy)(void* model);
    void (*reset)(void* model);
    void (*tick)(void* model, const G5rRtlInput* in, G5rRtlOutput* out);

    /* Waveform tracing, runtime-switchable (Table 2 measures its cost).
     * trace_start returns 0 on success. */
    int (*trace_start)(void* model, const char* vcd_path);
    void (*trace_stop)(void* model);
} G5rRtlModelApi;

/* Every model library exports exactly this symbol. */
#define G5R_RTL_GET_API_SYMBOL "g5r_rtl_get_api"
typedef const G5rRtlModelApi* (*G5rRtlGetApiFn)(void);

#ifdef __cplusplus
}
#endif

#endif /* G5R_BRIDGE_RTL_API_H */
