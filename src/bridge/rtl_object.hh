// RTLObject: the paper's core contribution.
//
// A generic SimObject that hosts an RTL model (behind the shared-library C
// ABI) inside the simulated SoC:
//
//   * four timing ports — two CPU-side (device/config traffic into the
//     model) and two memory-side (model-initiated traffic to the SoC memory
//     system), matching Section 3.4;
//   * a tick event running at the RTL model's own clock, configurable
//     relative to the SoC clock (the frequency-ratio parameter);
//   * the input/output struct exchange with the wrapper on every tick;
//   * optional TLB translation of model memory addresses;
//   * a max-in-flight-requests cap on model memory traffic — the knob the
//     NVDLA design-space exploration sweeps (Figs. 6/7);
//   * sideband event delivery (HwEventBus -> model event inputs, how the
//     PMU observes commit/miss/cycle events);
//   * an interrupt-line callback toward the SoC.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "bridge/rtl_model.hh"
#include "bridge/tlb.hh"
#include "mem/addr_range.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/hw_events.hh"
#include "sim/simulation.hh"

namespace g5r {

struct RtlObjectParams {
    /// RTL clock period. Table 1 runs the PMU and NVDLA at 1 GHz in a 2 GHz
    /// SoC; this is the paper's "parameter to change the frequency with
    /// respect to the core".
    Tick clockPeriod = periodFromGHz(1);

    /// Maximum outstanding model memory requests (per RTLObject).
    unsigned maxInflight = 240;

    /// Device-queue depth before back-pressuring the interconnect.
    unsigned devQueueDepth = 8;

    /// Translate model memory addresses through the attached TLB.
    bool translate = false;

    /// Stop the simulation when the model raises its done flag.
    bool exitOnDone = false;

    /// Deschedule the RTL tick event while the model reports quiescence
    /// (G5rRtlOutput::idle_hint) and the bridge holds no queued work. Wakes
    /// on device-request arrival, memory response, or an event-bus pulse.
    /// Timing-neutral by construction (see tick()/wake()); only affects
    /// host wall-clock. Ignored for pre-v2 models, which lack the hint.
    bool gateIdleTicks = true;
};

class RtlObject : public ClockedObject {
public:
    static constexpr unsigned kNumCpuSidePorts = 2;
    static constexpr unsigned kNumMemSidePorts = 2;

    RtlObject(Simulation& sim, std::string name, const RtlObjectParams& params,
              std::unique_ptr<RtlModel> model, HwEventBus* eventBus = nullptr,
              Tlb* tlb = nullptr);
    ~RtlObject() override;

    /// CPU-side (device/config) ports: the SoC initiates requests here.
    ResponsePort& cpuSidePort(unsigned idx = 0);

    /// Memory-side ports: the model initiates requests here. Port 0 carries
    /// model port-0 traffic (DBBIF-style), port 1 carries port-1 (SRAMIF).
    /// Binding port 1 is optional; unbound port-1 traffic is routed to
    /// port 0 (the paper connects both NVDLA interfaces to main memory).
    RequestPort& memSidePort(unsigned idx = 0);

    /// Level-change notifications of the model's interrupt line.
    void setIrqCallback(std::function<void(bool)> cb) { irqCallback_ = std::move(cb); }

    RtlModel& model() { return *model_; }
    bool modelDone() const { return done_; }
    bool irqLevel() const { return irqLevel_; }
    unsigned outstandingRequests() const { return outstanding_; }

    /// True while the tick event is descheduled on a quiescence hint.
    bool isGated() const { return gated_; }

    /// RTL cycles skipped while gated (the new `gatedTicks` stat).
    std::uint64_t gatedTicks() const {
        return static_cast<std::uint64_t>(statGatedTicks_.value());
    }

    /// Waveform passthrough (Table 2's gem5+PMU+waveform configuration).
    bool traceStart(const std::string& vcdPath) { return model_->traceStart(vcdPath); }
    void traceStop() { model_->traceStop(); }

    void startup() override;

private:
    class CpuSidePort final : public ResponsePort {
    public:
        CpuSidePort(std::string n, RtlObject& o, unsigned idx)
            : ResponsePort(std::move(n)), owner_(o), idx_(idx) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.recvDevReq(idx_, pkt); }
        void recvFunctional(Packet& pkt) override { owner_.devFunctional(pkt); }
        void recvRespRetry() override { owner_.respBlocked_[idx_] = false; owner_.sendDevResponses(); }

    private:
        RtlObject& owner_;
        unsigned idx_;
    };

    class MemSidePort final : public RequestPort {
    public:
        MemSidePort(std::string n, RtlObject& o, unsigned idx)
            : RequestPort(std::move(n)), owner_(o), idx_(idx) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.recvMemResp(pkt); }
        void recvReqRetry() override { owner_.memBlocked_[idx_] = false; owner_.sendMemRequests(); }

    private:
        RtlObject& owner_;
        unsigned idx_;
    };

    void tick();
    bool recvDevReq(unsigned portIdx, PacketPtr& pkt);
    void devFunctional(Packet& pkt);
    bool recvMemResp(PacketPtr& pkt);
    void sendDevResponses();
    void sendDevRetries();
    void sendMemRequests();
    void issueModelRequests(const G5rRtlOutput& out);
    bool canGate(const G5rRtlOutput& out) const;
    void wake();

    RtlObjectParams params_;
    std::unique_ptr<RtlModel> model_;
    HwEventBus* eventBus_;
    Tlb* tlb_;
    CallbackEvent tickEvent_;

    std::array<std::unique_ptr<CpuSidePort>, kNumCpuSidePorts> cpuPorts_;
    std::array<std::unique_ptr<MemSidePort>, kNumMemSidePorts> memPorts_;

    // Device channel.
    struct DevReq {
        unsigned port;
        PacketPtr pkt;
    };
    std::deque<DevReq> devQueue_;
    std::optional<DevReq> devReadPending_;
    bool devPresented_ = false;  ///< This tick's input carries devQueue_.front().
    std::array<bool, kNumCpuSidePorts> needDevRetry_{};
    std::array<bool, kNumCpuSidePorts> respBlocked_{};
    std::array<std::deque<PacketPtr>, kNumCpuSidePorts> respQueues_;

    // Model memory traffic.
    struct ModelResp {
        std::uint64_t id;
        std::array<std::uint8_t, G5R_RTL_MEM_DATA_BYTES> data;
    };
    std::deque<ModelResp> modelRespQueue_;
    std::unordered_map<std::uint64_t, std::uint64_t> pktToModelId_;
    std::array<std::deque<PacketPtr>, kNumMemSidePorts> memSendQueues_;
    std::array<bool, kNumMemSidePorts> memBlocked_{};
    unsigned outstanding_ = 0;

    bool irqLevel_ = false;
    bool done_ = false;
    std::function<void(bool)> irqCallback_;

    /// Causal context: the request of the last accepted device write (the
    /// host's configuration stream carries its job's ReqId). Model-initiated
    /// memory traffic is tagged with it — NVDLA reads its trace data on
    /// behalf of the job the host last configured.
    ReqId curReq_ = 0;

    // Quiescence gating. gatedAtEdge_ remembers the edge the descheduled
    // tick would have run at, so a wake in the same cycle re-runs it there
    // (never earlier, never twice) and later wakes can count skipped edges.
    bool gated_ = false;
    Tick gatedAtEdge_ = 0;

    stats::Scalar& statTicks_;
    stats::Scalar& statDevReads_;
    stats::Scalar& statDevWrites_;
    stats::Scalar& statMemReads_;
    stats::Scalar& statMemWrites_;
    stats::Scalar& statBytesRead_;
    stats::Scalar& statBytesWritten_;
    stats::Scalar& statZeroCreditTicks_;
    stats::Scalar& statGatedTicks_;
    stats::Scalar& statIrqEdges_;
    stats::Distribution& statOutstanding_;
    /// Quantile-capable views of the bridge queues, sampled each delivered
    /// tick alongside statOutstanding_: outstanding memory requests and
    /// device-queue depth.
    stats::Histogram& statOutstandingHist_;
    stats::Histogram& statDevQueueHist_;
};

}  // namespace g5r
