// Shared-library wrapper for the NVDLA-style accelerator: the analogue of
// the NVIDIA-provided nvdla.cpp Verilator wrapper the paper adapts. The
// CSB/AXI interface classes map onto the generic dev/memory channels of the
// bridge ABI.
#include <cstring>
#include <memory>

#include "bridge/rtl_api.h"
#include "models/nvdla/nvdla_design.hh"
#include "rtl/vcd.hh"

namespace g5r::models {
namespace {

class NvdlaWrapper {
public:
    void reset() {
        design_ = std::make_unique<NvdlaDesign>();
        cycle_ = 0;
        readPending_ = false;
    }

    void tick(const G5rRtlInput& in, G5rRtlOutput& out) {
        std::memset(&out, 0, sizeof(out));
        if (design_ == nullptr) reset();

        if (readPending_) {
            out.dev_resp_valid = 1;
            out.dev_rdata = design_->csbRead(readAddr_);
            readPending_ = false;
        }

        if (in.dev_valid != 0) {
            out.dev_ready = 1;
            if (in.dev_write != 0) {
                design_->csbWrite(in.dev_addr, in.dev_wdata);
            } else {
                readPending_ = true;
                readAddr_ = in.dev_addr;
            }
        }

        design_->cycle(in, out);
        ++cycle_;

        out.irq = design_->irqAsserted() ? 1 : 0;
        out.done = design_->doneFlag() ? 1 : 0;
        // Idle only with the engine drained, no CSB read awaiting its reply
        // beat, and no VCD recording (skipped cycles would be lost).
        out.idle_hint =
            design_->quiescent() && !readPending_ && vcd_ == nullptr ? 1 : 0;
        if (vcd_ != nullptr) vcd_->dumpCycle(cycle_);
    }

    int traceStart(const char* path) {
        if (design_ == nullptr) reset();
        vcd_ = std::make_unique<rtl::VcdWriter>(path, *design_);
        if (!vcd_->ok()) {
            vcd_.reset();
            return 1;
        }
        return 0;
    }

    void traceStop() { vcd_.reset(); }

private:
    std::unique_ptr<NvdlaDesign> design_;
    std::unique_ptr<rtl::VcdWriter> vcd_;
    std::uint64_t cycle_ = 0;
    bool readPending_ = false;
    std::uint64_t readAddr_ = 0;
};

void* nvdlaCreate(const char* /*config*/) { return new NvdlaWrapper(); }
void nvdlaDestroy(void* model) { delete static_cast<NvdlaWrapper*>(model); }
void nvdlaReset(void* model) { static_cast<NvdlaWrapper*>(model)->reset(); }
void nvdlaTick(void* model, const G5rRtlInput* in, G5rRtlOutput* out) {
    static_cast<NvdlaWrapper*>(model)->tick(*in, *out);
}
int nvdlaTraceStart(void* model, const char* path) {
    return static_cast<NvdlaWrapper*>(model)->traceStart(path);
}
void nvdlaTraceStop(void* model) { static_cast<NvdlaWrapper*>(model)->traceStop(); }

constexpr G5rRtlModelApi kNvdlaApi = {
    G5R_RTL_ABI_VERSION, "nvdla",
    nvdlaCreate, nvdlaDestroy, nvdlaReset, nvdlaTick, nvdlaTraceStart, nvdlaTraceStop,
};

}  // namespace
}  // namespace g5r::models

// In-process access; the shared library adds the generic symbol via shim.cc.
extern "C" const G5rRtlModelApi* g5r_nvdla_model_api() { return &g5r::models::kNvdlaApi; }
