// NVDLA workload traces.
//
// The paper drives the accelerator with register-transaction traces from the
// NVDLA release (sanity3, GoogleNet). A trace here is the same thing: the
// CSB register writes that configure and launch one convolution, plus the
// data segments the host loads into main memory beforehand, plus golden
// values (datapath checksum, expected traffic) for verification.
//
// Two workloads mirror the paper's:
//   * sanity3 — a small memory-intensive convolution (1x1 kernel, wide
//     channels): ~37 bytes of memory traffic per compute cycle, which is
//     what makes Fig. 7 so sensitive to memory technology.
//   * googlenet — the second convolution of the GoogleNet pipeline (3x3
//     filters, more compute, ifmap rows re-fetched per filter row): ~20
//     bytes/cycle, the milder Fig. 6 profile.
//
// `scale` grows H and W for paper-scale runs (GEM5RTL_FULL).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/backing_store.hh"

namespace g5r::models {

struct NvdlaShape {
    std::uint16_t width = 0;
    std::uint16_t height = 0;
    std::uint16_t inChannels = 0;
    std::uint16_t outChannels = 0;
    std::uint8_t filterH = 1;
    std::uint8_t filterW = 1;
    std::uint8_t refetch = 1;  ///< ifmap stream re-reads (line-buffer model).

    std::uint64_t ifmapBytes() const {
        return static_cast<std::uint64_t>(width) * height * inChannels;
    }
    std::uint64_t weightBytes() const {
        return static_cast<std::uint64_t>(outChannels) * inChannels * filterH * filterW;
    }
    std::uint64_t outH() const { return height >= filterH ? height - filterH + 1u : 1u; }
    std::uint64_t outW() const { return width >= filterW ? width - filterW + 1u : 1u; }
    std::uint64_t ofmapBytes() const { return outH() * outW() * outChannels; }
    std::uint64_t totalMacs() const {
        return static_cast<std::uint64_t>(outChannels) * inChannels * filterH * filterW *
               outH() * outW();
    }
    /// Total bytes moving through memory for one run.
    std::uint64_t totalTrafficBytes() const {
        return ifmapBytes() * refetch + weightBytes() + ofmapBytes();
    }
};

struct NvdlaPlacement {
    std::uint64_t ifmapBase = 0x2000'0000;
    std::uint64_t weightBase = 0x2800'0000;
    std::uint64_t ofmapBase = 0x3000'0000;
};

struct NvdlaTrace {
    struct RegWrite {
        std::uint64_t addr;  ///< CSB offset.
        std::uint64_t data;
    };
    struct Segment {
        std::uint64_t addr;
        std::vector<std::uint8_t> bytes;
    };

    std::string name;
    NvdlaShape shape;
    NvdlaPlacement placement;
    std::vector<RegWrite> regWrites;   ///< Configuration + start, in order.
    std::vector<Segment> segments;     ///< Preloaded ifmap + weights.
    std::uint64_t expectedChecksum = 0;
    std::uint64_t seed = 0;

    /// Load the data segments into simulated memory (what the paper's host
    /// application does before signalling the accelerator).
    void loadSegments(BackingStore& mem) const;
};

/// The paper's two evaluation workloads (scaled-down by default; scale
/// multiplies the spatial dimensions).
NvdlaShape sanity3Shape(unsigned scale = 1);
NvdlaShape googlenetConv2Shape(unsigned scale = 1);

/// Build a complete trace for a shape at a placement with pseudo-random
/// tensors (deterministic in @p seed).
NvdlaTrace makeConvTrace(std::string name, const NvdlaShape& shape,
                         const NvdlaPlacement& placement, std::uint64_t seed,
                         bool sramWeights = false);

/// Serialize/parse the textual trace format (for on-disk traces):
///   shape W H C K R S REFETCH
///   base  IFMAP WEIGHT OFMAP
///   seed  N
std::string serializeTrace(const NvdlaTrace& trace);
NvdlaTrace parseTrace(const std::string& text);

}  // namespace g5r::models
