#include "models/nvdla/nvdla_design.hh"

#include <algorithm>
#include <cstring>

namespace g5r::models {

NvdlaDesign::NvdlaDesign()
    : rtl::Module("nvdla"),
      state_(*this, "state", 2),
      irq_(*this, "irq", 1),
      computeBusy_(*this, "compute_busy", 32),
      stripesDone_(*this, "stripes_done", 32) {}

void NvdlaDesign::csbWrite(std::uint64_t addrIn, std::uint64_t data) {
    switch (addrIn & 0xFF) {
    case kIfmapBaseReg: ifmapBase_ = data; break;
    case kWeightBaseReg: weightBase_ = data; break;
    case kOfmapBaseReg: ofmapBase_ = data; break;
    case kDims0Reg: dims0_ = data; break;
    case kDims1Reg: dims1_ = data; break;
    case kSramModeReg: sramMode_ = data; break;
    case kControlReg:
        if ((data & 1) != 0 && state_.q() != kStateRunning) start();
        break;
    case kIrqClearReg:
        irq_.setD(0);
        irq_.latch();  // Config writes take effect immediately at this level.
        break;
    default: break;
    }
}

std::uint64_t NvdlaDesign::csbRead(std::uint64_t addrIn) const {
    switch (addrIn & 0xFF) {
    case kIfmapBaseReg: return ifmapBase_;
    case kWeightBaseReg: return weightBase_;
    case kOfmapBaseReg: return ofmapBase_;
    case kDims0Reg: return dims0_;
    case kDims1Reg: return dims1_;
    case kStatusReg: return (busy() ? 1u : 0u) | (doneFlag() ? 2u : 0u);
    case kPerfCyclesReg: return perfCycles_;
    case kSramModeReg: return sramMode_;
    case kChecksumReg: return checksum_;
    case kIdReg: return kIdRegValue;
    default: return 0;
    }
}

void NvdlaDesign::start() {
    const auto w = static_cast<std::uint64_t>(dims0_ & 0xFFFF);
    const auto h = static_cast<std::uint64_t>((dims0_ >> 16) & 0xFFFF);
    const auto c = static_cast<std::uint64_t>((dims0_ >> 32) & 0xFFFF);
    const auto k = static_cast<std::uint64_t>(dims1_ & 0xFFFF);
    const auto r = static_cast<std::uint64_t>((dims1_ >> 16) & 0xFF);
    const auto s = static_cast<std::uint64_t>((dims1_ >> 24) & 0xFF);
    auto refetch = static_cast<std::uint64_t>((dims1_ >> 32) & 0xFF);
    if (refetch == 0) refetch = 1;

    const std::uint64_t hOut = h >= r ? h - r + 1 : 1;
    const std::uint64_t wOut = w >= s ? w - s + 1 : 1;

    weights_ = Stream{};
    weights_.base = weightBase_;
    weights_.regionBytes = k * c * r * s;
    weights_.streamBytes = weights_.regionBytes;
    weights_.port = (sramMode_ & 1) != 0 ? 1 : 0;

    ifmap_ = Stream{};
    ifmap_.base = ifmapBase_;
    ifmap_.regionBytes = c * h * w;
    ifmap_.streamBytes = ifmap_.regionBytes * refetch;
    ifmap_.port = 0;

    ofmapBytes_ = k * hOut * wOut;
    ofmapIssued_ = 0;
    ofmapReadyBytes_ = 0;
    writeAcksPending_ = 0;
    checksum_ = 0;
    inflight_.clear();

    const std::uint64_t totalMacs = k * c * r * s * hOut * wOut;
    const std::uint64_t computeCycles = (totalMacs + kMacsPerCycle - 1) / kMacsPerCycle;
    stripesTotal_ = (ifmap_.streamBytes + kStripeBytes - 1) / kStripeBytes;
    if (stripesTotal_ == 0) stripesTotal_ = 1;
    cyclesPerStripe_ = (computeCycles + stripesTotal_ - 1) / stripesTotal_;
    if (cyclesPerStripe_ == 0) cyclesPerStripe_ = 1;

    stripesDone_.setD(0);
    stripesDone_.latch();
    computeBusy_.setD(0);
    computeBusy_.latch();
    state_.setD(kStateRunning);
    state_.latch();
    startCycle_ = cycleCount_;
    perfCycles_ = 0;
}

void NvdlaDesign::emitRead(G5rRtlOutput& out, Stream& stream) {
    const std::uint64_t remaining = stream.streamBytes - stream.issuedBytes;
    // Refetched streams wrap within the underlying region; never read past
    // the region end (a request must not straddle the wrap point).
    const std::uint64_t region = std::max<std::uint64_t>(stream.regionBytes, 1);
    const std::uint64_t offset = stream.issuedBytes % region;
    const auto size = static_cast<std::uint16_t>(std::min(
        {remaining, std::uint64_t{kLineBytes}, region - offset}));

    G5rRtlMemReq& req = out.mem_req[out.mem_req_count++];
    std::memset(&req, 0, sizeof(req));
    req.id = nextReqId_++;
    req.addr = stream.base + offset;
    req.write = 0;
    req.port = stream.port;
    req.size = size;

    inflight_[req.id] = InflightReq{(&stream == &weights_) ? kKindWeight : kKindIfmap, size};
    stream.issuedBytes += size;
}

void NvdlaDesign::emitWrite(G5rRtlOutput& out) {
    const std::uint64_t remaining = ofmapBytes_ - ofmapIssued_;
    const auto size = static_cast<std::uint16_t>(std::min<std::uint64_t>(remaining, kLineBytes));

    G5rRtlMemReq& req = out.mem_req[out.mem_req_count++];
    std::memset(&req, 0, sizeof(req));
    req.id = nextReqId_++;
    req.addr = ofmapBase_ + ofmapIssued_;
    req.write = 1;
    req.port = 0;
    req.size = size;
    // Deterministic output pattern, predictable by tests and trace golden.
    for (unsigned i = 0; i < size; ++i) {
        req.data[i] = static_cast<std::uint8_t>(ofmapIssued_ + i);
    }

    inflight_[req.id] = InflightReq{kKindWrite, size};
    ofmapIssued_ += size;
    ofmapReadyBytes_ -= std::min<std::uint64_t>(ofmapReadyBytes_, size);
    ++writeAcksPending_;
}

void NvdlaDesign::cycle(const G5rRtlInput& in, G5rRtlOutput& out) {
    ++cycleCount_;
    beginCycle();  // Hold-by-default; the logic below setD()s what changes.

    // Response consumption.
    if (in.mem_resp_valid != 0) {
        const auto it = inflight_.find(in.mem_resp_id);
        if (it != inflight_.end()) {
            const InflightReq req = it->second;
            inflight_.erase(it);
            if (req.kind == kKindWrite) {
                --writeAcksPending_;
            } else {
                Stream& stream = (req.kind == kKindWeight) ? weights_ : ifmap_;
                stream.receivedBytes += req.size;
                // Order-independent datapath checksum: plain byte sum.
                for (unsigned i = 0; i < req.size; ++i) {
                    checksum_ += in.mem_resp_data[i];
                }
            }
        }
    }

    if (state_.q() != kStateRunning) {
        commitCycle();
        return;
    }

    unsigned credits = in.mem_req_credits;

    // Read channel: one request per cycle (the DBBIF/SRAMIF line rate).
    if (credits > 0) {
        if (!weights_.fullyIssued()) {
            emitRead(out, weights_);
            --credits;
        } else if (!ifmap_.fullyIssued()) {
            emitRead(out, ifmap_);
            --credits;
        }
    }

    // Compute: stripes begin once weights are resident and enough of the
    // ifmap stream has arrived.
    if (computeBusy_.q() > 0) {
        computeBusy_.setD(computeBusy_.q() - 1);
        if (computeBusy_.q() == 1) {
            // Stripe completes this cycle.
            stripesDone_.setD(stripesDone_.q() + 1);
            const std::uint64_t produced =
                (ofmapBytes_ * (stripesDone_.q() + 1)) / stripesTotal_ -
                (ofmapBytes_ * stripesDone_.q()) / stripesTotal_;
            ofmapReadyBytes_ += produced;
        }
    } else if (weights_.fullyReceived() && stripesDone_.q() < stripesTotal_) {
        const std::uint64_t stripesAvailable =
            std::min<std::uint64_t>(ifmap_.receivedBytes / kStripeBytes +
                                        (ifmap_.fullyReceived() ? 1 : 0),
                                    stripesTotal_);
        if (stripesDone_.q() < stripesAvailable) {
            computeBusy_.setD(static_cast<std::uint32_t>(cyclesPerStripe_));
        }
    }

    // Write channel: one request per cycle.
    if (credits > 0 && ofmapIssued_ < ofmapBytes_ && ofmapReadyBytes_ >= kLineBytes) {
        emitWrite(out);
        --credits;
    } else if (credits > 0 && ofmapIssued_ < ofmapBytes_ &&
               stripesDone_.q() >= stripesTotal_ && ofmapReadyBytes_ > 0) {
        emitWrite(out);  // Final partial line.
        --credits;
    }

    // Completion.
    const bool allRead = weights_.fullyReceived() && ifmap_.fullyReceived();
    const bool allComputed = stripesDone_.q() >= stripesTotal_;
    const bool allWritten = ofmapIssued_ >= ofmapBytes_ && writeAcksPending_ == 0;
    if (allRead && allComputed && allWritten && computeBusy_.q() == 0) {
        state_.setD(kStateDone);
        irq_.setD(1);
        perfCycles_ = cycleCount_ - startCycle_;
    }

    commitCycle();
}

}  // namespace g5r::models
