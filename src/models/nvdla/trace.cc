#include "models/nvdla/trace.hh"

#include <sstream>

#include "models/nvdla/nvdla_design.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace g5r::models {

void NvdlaTrace::loadSegments(BackingStore& mem) const {
    for (const Segment& seg : segments) {
        mem.write(seg.addr, seg.bytes.data(), static_cast<unsigned>(seg.bytes.size()));
    }
}

NvdlaShape sanity3Shape(unsigned scale) {
    // Memory-intensive: 1x1 kernel over wide channels; ~37 B of traffic per
    // compute cycle at nv_full's 2048 MACs/cycle.
    NvdlaShape s;
    s.width = static_cast<std::uint16_t>(48 * scale);
    s.height = static_cast<std::uint16_t>(48 * scale);
    s.inChannels = 112;
    s.outChannels = 112;
    s.filterH = s.filterW = 1;
    s.refetch = 1;
    return s;
}

NvdlaShape googlenetConv2Shape(unsigned scale) {
    // GoogleNet pipeline conv2-like: 3x3 filters, higher compute density
    // (~20 B/cycle), ifmap rows re-fetched once per filter row.
    NvdlaShape s;
    s.width = static_cast<std::uint16_t>(28 * scale);
    s.height = static_cast<std::uint16_t>(28 * scale);
    s.inChannels = 64;
    s.outChannels = 48;
    s.filterH = s.filterW = 3;
    s.refetch = 3;
    return s;
}

NvdlaTrace makeConvTrace(std::string name, const NvdlaShape& shape,
                         const NvdlaPlacement& placement, std::uint64_t seed,
                         bool sramWeights) {
    NvdlaTrace trace;
    trace.name = std::move(name);
    trace.shape = shape;
    trace.placement = placement;
    trace.seed = seed;

    Rng rng{seed};
    auto makeSegment = [&](std::uint64_t addr, std::uint64_t bytes) {
        NvdlaTrace::Segment seg;
        seg.addr = addr;
        seg.bytes.resize(bytes);
        for (auto& b : seg.bytes) b = static_cast<std::uint8_t>(rng.next());
        trace.segments.push_back(std::move(seg));
    };
    makeSegment(placement.ifmapBase, shape.ifmapBytes());
    makeSegment(placement.weightBase, shape.weightBytes());

    // Golden datapath checksum: byte sum of everything the engine reads
    // (order-independent, so out-of-order memory responses don't matter).
    std::uint64_t checksum = 0;
    for (const auto b : trace.segments[0].bytes) checksum += b * shape.refetch;
    for (const auto b : trace.segments[1].bytes) checksum += b;
    trace.expectedChecksum = checksum;

    const std::uint64_t dims0 = static_cast<std::uint64_t>(shape.width) |
                                (static_cast<std::uint64_t>(shape.height) << 16) |
                                (static_cast<std::uint64_t>(shape.inChannels) << 32);
    const std::uint64_t dims1 = static_cast<std::uint64_t>(shape.outChannels) |
                                (static_cast<std::uint64_t>(shape.filterH) << 16) |
                                (static_cast<std::uint64_t>(shape.filterW) << 24) |
                                (static_cast<std::uint64_t>(shape.refetch) << 32);

    trace.regWrites = {
        {NvdlaDesign::kSramModeReg, sramWeights ? 1ull : 0ull},
        {NvdlaDesign::kIfmapBaseReg, placement.ifmapBase},
        {NvdlaDesign::kWeightBaseReg, placement.weightBase},
        {NvdlaDesign::kOfmapBaseReg, placement.ofmapBase},
        {NvdlaDesign::kDims0Reg, dims0},
        {NvdlaDesign::kDims1Reg, dims1},
        {NvdlaDesign::kControlReg, 1},  // Start.
    };
    return trace;
}

std::string serializeTrace(const NvdlaTrace& trace) {
    std::ostringstream os;
    os << "# gem5+rtl nvdla trace: " << trace.name << "\n"
       << "name " << trace.name << "\n"
       << "shape " << trace.shape.width << ' ' << trace.shape.height << ' '
       << trace.shape.inChannels << ' ' << trace.shape.outChannels << ' '
       << +trace.shape.filterH << ' ' << +trace.shape.filterW << ' '
       << +trace.shape.refetch << "\n"
       << "base 0x" << std::hex << trace.placement.ifmapBase << " 0x"
       << trace.placement.weightBase << " 0x" << trace.placement.ofmapBase << std::dec
       << "\n"
       << "seed " << trace.seed << "\n"
       << "checksum " << trace.expectedChecksum << "\n";
    return os.str();
}

NvdlaTrace parseTrace(const std::string& text) {
    std::istringstream is{text};
    std::string line;
    std::string traceName = "unnamed";
    NvdlaShape shape;
    NvdlaPlacement placement;
    std::uint64_t seed = 0xD1A5EED;
    bool haveShape = false;
    while (std::getline(is, line)) {
        std::istringstream ls{line};
        std::string kind;
        ls >> kind;
        if (kind.empty() || kind[0] == '#') continue;
        if (kind == "name") {
            ls >> traceName;
        } else if (kind == "shape") {
            unsigned w = 0, h = 0, c = 0, k = 0, r = 0, s = 0, f = 1;
            ls >> w >> h >> c >> k >> r >> s >> f;
            shape.width = static_cast<std::uint16_t>(w);
            shape.height = static_cast<std::uint16_t>(h);
            shape.inChannels = static_cast<std::uint16_t>(c);
            shape.outChannels = static_cast<std::uint16_t>(k);
            shape.filterH = static_cast<std::uint8_t>(r);
            shape.filterW = static_cast<std::uint8_t>(s);
            shape.refetch = static_cast<std::uint8_t>(f);
            haveShape = true;
        } else if (kind == "seed") {
            ls >> seed;
        } else if (kind == "base") {
            std::string a, b, c;
            ls >> a >> b >> c;
            placement.ifmapBase = std::stoull(a, nullptr, 0);
            placement.weightBase = std::stoull(b, nullptr, 0);
            placement.ofmapBase = std::stoull(c, nullptr, 0);
        }
    }
    if (!haveShape) panic("trace text lacks a shape statement");
    return makeConvTrace(traceName, shape, placement, seed);
}

}  // namespace g5r::models
