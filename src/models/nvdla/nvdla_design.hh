// Cycle-level NVDLA-style convolution accelerator.
//
// Stands in for the NVDLA nv_full RTL (Table 1: 2048 8-bit MACs, 512 KiB
// buffer, 1 GHz) at the fidelity the paper's design-space exploration
// needs: a CSB-configured engine that streams input features and weights
// from memory through AXI-style read channels, computes through a MAC array,
// and streams results back — with its memory concurrency bounded by the
// credits the RTLObject grants (the max-in-flight knob of Figs. 6/7).
//
// Interfaces match the paper's description of NVDLA:
//   * CSB   — the device channel (configuration space bus),
//   * IRQ   — completion interrupt,
//   * DBBIF — memory port 0 (high-bandwidth data backbone),
//   * SRAMIF— memory port 1 (optional secondary interface; weight traffic
//             can be steered there via the SRAM_MODE register).
//
// Functional honesty: every byte read is folded into an order-independent
// checksum exposed through a CSB register, and output writes carry a
// deterministic pattern derived from it, so tests can verify the entire
// memory datapath end to end (trace.hh computes the expected value).
//
// Register map (byte offsets on the CSB):
//   0x00 IFMAP_BASE   0x08 WEIGHT_BASE   0x10 OFMAP_BASE
//   0x18 DIMS0  = W | H<<16 | C<<32
//   0x20 DIMS1  = K | R<<16 | S<<24 | refetch<<32
//   0x28 CONTROL: write 1 -> start
//   0x30 STATUS: bit0 busy, bit1 done
//   0x38 IRQ_CLEAR: any write deasserts the interrupt
//   0x40 PERF_CYCLES (RO): cycles from start to done
//   0x48 SRAM_MODE: bit0 -> fetch weights via SRAMIF (port 1)
//   0x50 CHECKSUM (RO): datapath checksum
//   0x58 ID (RO)
#pragma once

#include <cstdint>
#include <unordered_map>

#include "bridge/rtl_api.h"
#include "rtl/kernel.hh"

namespace g5r::models {

class NvdlaDesign final : public rtl::Module {
public:
    static constexpr unsigned kMacsPerCycle = 2048;
    static constexpr unsigned kLineBytes = 64;
    static constexpr unsigned kStripeBytes = 2048;
    static constexpr std::uint64_t kIdRegValue = 0x4E56444C41'01;  // "NVDLA",v1.

    // Register offsets.
    static constexpr std::uint64_t kIfmapBaseReg = 0x00;
    static constexpr std::uint64_t kWeightBaseReg = 0x08;
    static constexpr std::uint64_t kOfmapBaseReg = 0x10;
    static constexpr std::uint64_t kDims0Reg = 0x18;
    static constexpr std::uint64_t kDims1Reg = 0x20;
    static constexpr std::uint64_t kControlReg = 0x28;
    static constexpr std::uint64_t kStatusReg = 0x30;
    static constexpr std::uint64_t kIrqClearReg = 0x38;
    static constexpr std::uint64_t kPerfCyclesReg = 0x40;
    static constexpr std::uint64_t kSramModeReg = 0x48;
    static constexpr std::uint64_t kChecksumReg = 0x50;
    static constexpr std::uint64_t kIdReg = 0x58;

    NvdlaDesign();

    /// Apply a CSB write (performed by the wrapper on dev beats).
    void csbWrite(std::uint64_t addr, std::uint64_t data);
    std::uint64_t csbRead(std::uint64_t addr) const;

    /// Advance one clock: may emit memory requests into @p out (respecting
    /// @p credits and one-read-plus-one-write channel limits) and consume
    /// the response in @p in.
    void cycle(const G5rRtlInput& in, G5rRtlOutput& out);

    bool busy() const { return state_.q() == kStateRunning; }
    bool doneFlag() const { return state_.q() == kStateDone; }

    /// True when idle cycles cannot change engine state: the conv pipeline
    /// is not running and every DMA read/write has drained. Basis of the
    /// ABI idle hint; cycleCount_ may lag real time while the host gates
    /// ticks, but perfCycles_ is a delta inside the (never-gated) running
    /// window, so it is unaffected.
    bool quiescent() const {
        return state_.q() != kStateRunning && inflight_.empty() &&
               writeAcksPending_ == 0;
    }
    bool irqAsserted() const { return irq_.q() != 0; }
    std::uint64_t checksum() const { return checksum_; }
    std::uint64_t perfCycles() const { return perfCycles_; }

private:
    enum : std::uint8_t { kStateIdle = 0, kStateRunning = 1, kStateDone = 2 };

    struct Stream {
        std::uint64_t base = 0;      ///< Region base address.
        std::uint64_t regionBytes = 0;  ///< Underlying data size.
        std::uint64_t streamBytes = 0;  ///< Total bytes to fetch (refetch included).
        std::uint64_t issuedBytes = 0;
        std::uint64_t receivedBytes = 0;
        std::uint8_t port = 0;

        bool fullyIssued() const { return issuedBytes >= streamBytes; }
        bool fullyReceived() const { return receivedBytes >= streamBytes; }
    };

    void start();
    void emitRead(G5rRtlOutput& out, Stream& stream);
    void emitWrite(G5rRtlOutput& out);

    // Configuration registers (plain, written via CSB before start).
    std::uint64_t ifmapBase_ = 0;
    std::uint64_t weightBase_ = 0;
    std::uint64_t ofmapBase_ = 0;
    std::uint64_t dims0_ = 0;
    std::uint64_t dims1_ = 0;
    std::uint64_t sramMode_ = 0;

    // Architectural state visible in waveforms.
    rtl::Reg<std::uint8_t> state_;
    rtl::Reg<std::uint8_t> irq_;
    rtl::Reg<std::uint32_t> computeBusy_;   ///< Cycles left in current stripe.
    rtl::Reg<std::uint32_t> stripesDone_;

    // Engine bookkeeping (cycle-level, not bit-level).
    Stream weights_;
    Stream ifmap_;
    std::uint64_t ofmapBytes_ = 0;
    std::uint64_t ofmapIssued_ = 0;
    std::uint64_t writeAcksPending_ = 0;
    std::uint64_t stripesTotal_ = 0;
    std::uint64_t cyclesPerStripe_ = 0;
    std::uint64_t ofmapReadyBytes_ = 0;   ///< Produced by compute, not yet written.
    std::uint64_t checksum_ = 0;
    std::uint64_t nextReqId_ = 1;
    struct InflightReq {
        std::uint8_t kind;
        std::uint16_t size;
    };
    std::unordered_map<std::uint64_t, InflightReq> inflight_;
    std::uint64_t cycleCount_ = 0;
    std::uint64_t startCycle_ = 0;
    std::uint64_t perfCycles_ = 0;

    static constexpr std::uint8_t kKindWeight = 0;
    static constexpr std::uint8_t kKindIfmap = 1;
    static constexpr std::uint8_t kKindWrite = 2;
};

}  // namespace g5r::models
