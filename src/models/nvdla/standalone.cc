#include "models/nvdla/standalone.hh"

#include <cstring>

#include "models/nvdla/nvdla_design.hh"

namespace g5r::models {

StandaloneResult playTraceStandalone(RtlModel& model, const NvdlaTrace& trace,
                                     BackingStore& mem, std::uint64_t maxCycles) {
    StandaloneResult result;
    trace.loadSegments(mem);
    model.reset();

    struct PendingResp {
        std::uint64_t id;
        std::array<std::uint8_t, G5R_RTL_MEM_DATA_BYTES> data;
    };
    std::deque<PendingResp> respQueue;
    std::size_t nextRegWrite = 0;
    bool awaitingDevReadResp = false;
    std::uint64_t lastChecksumRead = 0;

    for (std::uint64_t cycle = 0; cycle < maxCycles; ++cycle) {
        G5rRtlInput in{};
        G5rRtlOutput out{};

        // Feed configuration writes, then (after done) one checksum read.
        bool presentedWrite = false;
        bool presentedRead = false;
        if (nextRegWrite < trace.regWrites.size()) {
            in.dev_valid = 1;
            in.dev_write = 1;
            in.dev_addr = trace.regWrites[nextRegWrite].addr;
            in.dev_wdata = trace.regWrites[nextRegWrite].data;
            presentedWrite = true;
        } else if (result.completed && !awaitingDevReadResp) {
            in.dev_valid = 1;
            in.dev_write = 0;
            in.dev_addr = NvdlaDesign::kChecksumReg;
            presentedRead = true;
        }

        // Ideal memory: one response per tick from the queue.
        if (!respQueue.empty()) {
            in.mem_resp_valid = 1;
            in.mem_resp_id = respQueue.front().id;
            std::memcpy(in.mem_resp_data, respQueue.front().data.data(),
                        respQueue.front().data.size());
            respQueue.pop_front();
        }
        in.mem_req_credits = G5R_RTL_MAX_MEM_REQ;

        model.tick(in, out);
        if (!result.completed) ++result.cycles;  // Cycles-to-done metric.

        if (presentedWrite && out.dev_ready != 0) ++nextRegWrite;
        if (presentedRead && out.dev_ready != 0) awaitingDevReadResp = true;
        if (out.dev_resp_valid != 0 && awaitingDevReadResp) {
            lastChecksumRead = out.dev_rdata;
            result.checksum = lastChecksumRead;
            return result;  // Done and checksum retrieved.
        }

        // Service the model's memory requests against the backing store.
        for (unsigned i = 0; i < out.mem_req_count; ++i) {
            const G5rRtlMemReq& req = out.mem_req[i];
            PendingResp resp;
            resp.id = req.id;
            resp.data.fill(0);
            if (req.write != 0) {
                mem.write(req.addr, req.data, req.size);
            } else {
                mem.read(req.addr, resp.data.data(), req.size);
            }
            respQueue.push_back(resp);
        }

        if (out.done != 0) result.completed = true;
    }
    return result;
}

}  // namespace g5r::models
