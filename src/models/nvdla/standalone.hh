// Standalone trace player: the paper's "standalone Verilator simulation
// employing the wrapper that NVIDIA provides" — the Table 3 baseline.
//
// Runs an NVDLA model directly against a BackingStore with an ideal
// zero-latency memory (requests answered the next tick) and no simulator
// around it: pure model execution speed.
#pragma once

#include <deque>
#include <memory>

#include "bridge/rtl_model.hh"
#include "mem/backing_store.hh"
#include "models/nvdla/trace.hh"

namespace g5r::models {

struct StandaloneResult {
    std::uint64_t cycles = 0;       ///< RTL cycles until done.
    std::uint64_t checksum = 0;     ///< CSB checksum register at completion.
    bool completed = false;
};

/// Play @p trace on @p model to completion (or @p maxCycles).
StandaloneResult playTraceStandalone(RtlModel& model, const NvdlaTrace& trace,
                                     BackingStore& mem,
                                     std::uint64_t maxCycles = 50'000'000);

}  // namespace g5r::models
