// The PMU hardware design, written against the RTL kernel.
//
// Mirrors the paper's in-house PMU: a configurable bank of 32-bit event
// counters (Table 1: 20 of them), an enable mask, a programmable threshold
// on a selected counter that raises an interrupt and resets that counter,
// and the two timing artefacts the paper observes with gem5+rtl:
//   (i)  a 1-cycle delay between an event pulse and the counter update
//        (the capture register stage), and
//   (ii) event loss during the few-cycle reset window that follows a
//        threshold interrupt.
//
// Register map (64-bit registers, byte offsets):
//   0x000 + 8*i : counter i (read; write to preset)
//   0x100       : enable mask (bit i gates event line i)
//   0x108       : threshold value (0 disables)
//   0x110       : threshold counter select
//   0x118       : interrupt status (bit 0); any write clears the interrupt
//   0x120       : control (write 1: global counter clear)
//   0x128       : identification/version (read-only)
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/kernel.hh"

namespace g5r::models {

class PmuDesign final : public rtl::Module {
public:
    static constexpr unsigned kNumCounters = 20;
    static constexpr unsigned kResetWindowCycles = 3;  ///< Artefact (ii).
    static constexpr std::uint64_t kIdRegValue = 0x504D5501;  // "PMU",v1.

    // Register offsets.
    static constexpr std::uint64_t kCounterBase = 0x000;
    static constexpr std::uint64_t kEnableReg = 0x100;
    static constexpr std::uint64_t kThresholdReg = 0x108;
    static constexpr std::uint64_t kThresholdSelReg = 0x110;
    static constexpr std::uint64_t kIrqStatusReg = 0x118;
    static constexpr std::uint64_t kControlReg = 0x120;
    static constexpr std::uint64_t kIdReg = 0x128;

    PmuDesign();

    // ---- per-cycle inputs (set before tick()) ----
    /// Event pulses arriving this cycle on each line.
    std::array<std::uint32_t, kNumCounters> eventsIn{};

    /// Config-bus write strobe for this cycle (at most one).
    bool cfgWriteValid = false;
    std::uint64_t cfgWriteAddr = 0;
    std::uint64_t cfgWriteData = 0;

    void evalComb() override;

    /// Combinational register read of the current state.
    std::uint64_t readReg(std::uint64_t addr) const;

    std::uint32_t counterValue(unsigned idx) const { return counters_[idx]->q(); }
    bool irqAsserted() const { return irq_.q() != 0; }

    /// True when a cycle with no config write and no event pulses leaves
    /// every register unchanged — the basis of the ABI idle hint. Any
    /// enabled counter disqualifies: the wrapper pulses the clock-as-event
    /// line internally, and enabled lines must observe every cycle.
    bool quiescent() const;

private:
    std::vector<std::unique_ptr<rtl::Reg<std::uint32_t>>> counters_;
    std::vector<std::unique_ptr<rtl::Reg<std::uint32_t>>> captureStage_;  ///< Artefact (i).
    rtl::Reg<std::uint32_t> enableMask_;
    rtl::Reg<std::uint64_t> threshold_;
    rtl::Reg<std::uint8_t> thresholdSel_;
    rtl::Reg<std::uint8_t> irq_;
    rtl::Reg<std::uint8_t> resetWindow_;
};

}  // namespace g5r::models
