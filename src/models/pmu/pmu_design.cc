#include "models/pmu/pmu_design.hh"

namespace g5r::models {

PmuDesign::PmuDesign()
    : rtl::Module("pmu"),
      enableMask_(*this, "enable_mask", 32),
      threshold_(*this, "threshold", 64),
      thresholdSel_(*this, "threshold_sel", 8),
      irq_(*this, "irq", 1),
      resetWindow_(*this, "reset_window", 8) {
    counters_.reserve(kNumCounters);
    captureStage_.reserve(kNumCounters);
    for (unsigned i = 0; i < kNumCounters; ++i) {
        counters_.push_back(std::make_unique<rtl::Reg<std::uint32_t>>(
            *this, "counter" + std::to_string(i), 32));
        captureStage_.push_back(std::make_unique<rtl::Reg<std::uint32_t>>(
            *this, "capture" + std::to_string(i), 32));
    }
}

void PmuDesign::evalComb() {
    const bool inReset = resetWindow_.q() > 0;

    // Capture stage: gate by enable mask; drop everything while the
    // post-interrupt reset window is active (artefact ii).
    for (unsigned i = 0; i < kNumCounters; ++i) {
        const bool enabled = ((enableMask_.q() >> i) & 1u) != 0;
        captureStage_[i]->setD((enabled && !inReset) ? eventsIn[i] : 0);
    }

    // Count stage: counters see last cycle's captured pulses (artefact i).
    for (unsigned i = 0; i < kNumCounters; ++i) {
        counters_[i]->setD(counters_[i]->q() + captureStage_[i]->q());
    }

    if (inReset) resetWindow_.setD(static_cast<std::uint8_t>(resetWindow_.q() - 1));

    // Threshold check on the selected counter's next value.
    const unsigned sel = thresholdSel_.q() % kNumCounters;
    const std::uint64_t nextSel = counters_[sel]->q() + captureStage_[sel]->q();
    if (threshold_.q() != 0 && nextSel >= threshold_.q()) {
        irq_.setD(1);
        counters_[sel]->setD(0);
        resetWindow_.setD(kResetWindowCycles);
    }

    // Config-bus writes win over counting in the same cycle.
    if (cfgWriteValid) {
        const std::uint64_t addr = cfgWriteAddr & 0xFFF;
        if (addr >= kCounterBase && addr < kCounterBase + 8 * kNumCounters && addr % 8 == 0) {
            counters_[addr / 8]->setD(static_cast<std::uint32_t>(cfgWriteData));
        } else if (addr == kEnableReg) {
            enableMask_.setD(static_cast<std::uint32_t>(cfgWriteData));
        } else if (addr == kThresholdReg) {
            threshold_.setD(cfgWriteData);
        } else if (addr == kThresholdSelReg) {
            thresholdSel_.setD(static_cast<std::uint8_t>(cfgWriteData));
        } else if (addr == kIrqStatusReg) {
            irq_.setD(0);  // Any write clears the interrupt.
        } else if (addr == kControlReg && (cfgWriteData & 1) != 0) {
            for (auto& c : counters_) c->setD(0);
        }
    }
}

bool PmuDesign::quiescent() const {
    if (resetWindow_.q() != 0) return false;   // Window decrements per cycle.
    if (enableMask_.q() != 0) return false;    // Enabled lines count cycles/pulses.
    for (const auto& c : captureStage_) {
        if (c->q() != 0) return false;         // In-flight pulse not yet counted.
    }
    // A met threshold re-fires every cycle (reset counter, open window).
    const unsigned sel = thresholdSel_.q() % kNumCounters;
    if (threshold_.q() != 0 &&
        counters_[sel]->q() + captureStage_[sel]->q() >= threshold_.q()) {
        return false;
    }
    return true;
}

std::uint64_t PmuDesign::readReg(std::uint64_t addrIn) const {
    const std::uint64_t addr = addrIn & 0xFFF;
    if (addr >= kCounterBase && addr < kCounterBase + 8 * kNumCounters && addr % 8 == 0) {
        return counters_[addr / 8]->q();
    }
    if (addr == kEnableReg) return enableMask_.q();
    if (addr == kThresholdReg) return threshold_.q();
    if (addr == kThresholdSelReg) return thresholdSel_.q();
    if (addr == kIrqStatusReg) return irq_.q();
    if (addr == kIdReg) return kIdRegValue;
    return 0;
}

}  // namespace g5r::models
