// Shared-library wrapper around the PMU design: the paper's "wrapper ...
// similar to a testbench" that bridges the generated RTL model to the
// tick/reset C ABI consumed by the RTLObject.
//
// As in the original PMU, the register file is reached over AXI-Lite: the
// wrapper converts each device-channel beat into AW/W or AR transactions on
// an AxiLiteSlave endpoint, so reads and writes follow real AXI handshakes
// (including the one-cycle read-data latency the paper's artefact analysis
// depends on).
//
// The PMU's clock is wired to event line HwEventBus::kCycle internally (the
// paper: "we have also connected the clock as a PMU event"), so thresholds
// on that line produce periodic interrupts.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "axi/axi_lite.hh"
#include "bridge/rtl_api.h"
#include "models/pmu/pmu_design.hh"
#include "obs/trigger.hh"
#include "rtl/vcd.hh"
#include "sim/hw_events.hh"

namespace g5r::models {
namespace {

class PmuWrapper {
public:
    PmuWrapper()
        : axi_([this](std::uint64_t addr) { return design_.readReg(addr); },
               [this](std::uint64_t addr, std::uint64_t data, std::uint8_t) {
                   design_.cfgWriteValid = true;
                   design_.cfgWriteAddr = addr;
                   design_.cfgWriteData = data;
               }) {}

    void reset() {
        design_.reset();
        axi_.reset();
        cycle_ = 0;
    }

    void tick(const G5rRtlInput& in, G5rRtlOutput& out) {
        std::memset(&out, 0, sizeof(out));

        // Frame the device beat as AXI-Lite channel activity.
        axi::AxiLiteSlave::Inputs bus;
        if (in.dev_valid != 0) {
            if (in.dev_write != 0) {
                bus.aw = axi::AddrBeat{true, in.dev_addr};
                bus.w = axi::WriteBeat{true, in.dev_wdata, 0xFF};
            } else {
                bus.ar = axi::AddrBeat{true, in.dev_addr};
            }
        }

        design_.cfgWriteValid = false;  // Set by the AXI write path below.
        const axi::AxiLiteSlave::Outputs busOut = axi_.cycle(bus);

        if (in.dev_valid != 0) {
            out.dev_ready = in.dev_write != 0 ? (busOut.awready && busOut.wready ? 1 : 0)
                                              : (busOut.arready ? 1 : 0);
        }
        if (busOut.r.valid) {
            out.dev_resp_valid = 1;
            out.dev_rdata = busOut.r.data;
        }

        for (unsigned i = 0; i < PmuDesign::kNumCounters; ++i) {
            design_.eventsIn[i] = in.events[i];
        }
        design_.eventsIn[HwEventBus::kCycle] += 1;  // The clock-as-event line.

        design_.tick();
        ++cycle_;

        out.irq = design_.irqAsserted() ? 1 : 0;
        // Idle only when the design is insensitive to further idle cycles,
        // the AXI endpoint holds no half-finished transaction, and no VCD or
        // armed trigger capture is recording (skipped cycles would be
        // missing from the dump / unseen by the watchpoint).
        out.idle_hint = design_.quiescent() && axi_.idle() && vcd_ == nullptr &&
                                (capture_ == nullptr || !capture_->active())
                            ? 1
                            : 0;
        if (vcd_ != nullptr) vcd_->dumpCycle(cycle_);
        if (capture_ != nullptr) capture_->cycle(cycle_);
    }

    int traceStart(const char* path) {
        // GEM5RTL_TRIGGER arms a windowed capture instead of always-on
        // tracing: the VCD file appears only if the watchpoint fires.
        if (const char* spec = std::getenv("GEM5RTL_TRIGGER"); spec != nullptr &&
                                                               *spec != '\0') {
            capture_ = obs::TriggerCapture::fromSpecString(spec, path,
                                                           rtl::moduleSignals(design_));
            return capture_ != nullptr ? 0 : 1;
        }
        vcd_ = std::make_unique<rtl::VcdWriter>(path, design_);
        if (!vcd_->ok()) {
            vcd_.reset();
            return 1;
        }
        return 0;
    }

    void traceStop() {
        vcd_.reset();
        capture_.reset();
    }

private:
    PmuDesign design_;
    axi::AxiLiteSlave axi_;
    std::unique_ptr<rtl::VcdWriter> vcd_;
    std::unique_ptr<obs::TriggerCapture> capture_;
    std::uint64_t cycle_ = 0;
};

void* pmuCreate(const char* /*config*/) { return new PmuWrapper(); }
void pmuDestroy(void* model) { delete static_cast<PmuWrapper*>(model); }
void pmuReset(void* model) { static_cast<PmuWrapper*>(model)->reset(); }
void pmuTick(void* model, const G5rRtlInput* in, G5rRtlOutput* out) {
    static_cast<PmuWrapper*>(model)->tick(*in, *out);
}
int pmuTraceStart(void* model, const char* path) {
    return static_cast<PmuWrapper*>(model)->traceStart(path);
}
void pmuTraceStop(void* model) { static_cast<PmuWrapper*>(model)->traceStop(); }

constexpr G5rRtlModelApi kPmuApi = {
    G5R_RTL_ABI_VERSION, "pmu",
    pmuCreate, pmuDestroy, pmuReset, pmuTick, pmuTraceStart, pmuTraceStop,
};

}  // namespace
}  // namespace g5r::models

// In-process access for unit tests and statically-linked configurations.
// The shared library adds the generic G5R_RTL_GET_API_SYMBOL via shim.cc.
extern "C" const G5rRtlModelApi* g5r_pmu_model_api() { return &g5r::models::kPmuApi; }
