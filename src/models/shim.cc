// Generic export shim compiled once into every model shared library.
//
// Each model's code exports a uniquely named api accessor (usable when the
// model is linked in-process); this shim forwards the standard dlopen entry
// point to it. G5R_MODEL_API_FN is set per target by CMake.
#include "bridge/rtl_api.h"

#ifndef G5R_MODEL_API_FN
#error "compile with -DG5R_MODEL_API_FN=<model api accessor>"
#endif

extern "C" const G5rRtlModelApi* G5R_MODEL_API_FN(void);

extern "C" const G5rRtlModelApi* g5r_rtl_get_api(void) { return G5R_MODEL_API_FN(); }
