// Bitonic sorting accelerator — the paper's GHDL/VHDL use case.
//
// The design is a bitonic sorting network expressed as a structural netlist
// (rtl/netlist.hh, the GHDL-toolflow stand-in) and interpreted at runtime;
// this wrapper gives it the same shared-library face as the Verilator-path
// models, demonstrating that both HDL flows land behind one ABI.
//
// Device register map:
//   0x000 + 8*i : input element i (write)
//   0x100 + 8*i : output element i (read; valid when done)
//   0x200       : control — write 1 to start a sort
//   0x208       : status — bit0 busy, bit1 done
//   0x210       : element count N (read-only)
//
// A sort takes one cycle per network stage (the pipeline depth of the
// combinational network if it were registered), so timing scales with
// log^2(N) like the real design would.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bridge/rtl_api.h"
#include "obs/trigger.hh"
#include "rtl/netlist.hh"
#include "rtl/vcd.hh"

namespace g5r::models {
namespace {

unsigned parseN(const char* config) {
    // config: "n=<power-of-two>", default 16.
    if (config != nullptr) {
        const std::string s{config};
        if (const auto pos = s.find("n="); pos != std::string::npos) {
            const unsigned n = static_cast<unsigned>(std::strtoul(s.c_str() + pos + 2,
                                                                  nullptr, 10));
            if (n >= 2 && (n & (n - 1)) == 0 && n <= 64) return n;
        }
    }
    return 16;
}

rtl::EvalMode parseEvalMode(const char* config) {
    // config token "eval=levelized|dirty" wins; the GEM5RTL_NETLIST_EVAL
    // environment variable covers deployments where the config string is
    // fixed (the SoC experiments). Default: dirty-bit.
    std::string spec;
    if (config != nullptr) {
        const std::string s{config};
        if (const auto pos = s.find("eval="); pos != std::string::npos) {
            spec = s.substr(pos + 5, s.find(',', pos) - (pos + 5));
        }
    }
    if (spec.empty()) {
        if (const char* env = std::getenv("GEM5RTL_NETLIST_EVAL"); env != nullptr) {
            spec = env;
        }
    }
    return spec == "levelized" ? rtl::EvalMode::kLevelized : rtl::EvalMode::kDirtyBit;
}

unsigned stagesFor(unsigned n) {
    // Bitonic network depth: log(n) * (log(n)+1) / 2.
    unsigned log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    return log2n * (log2n + 1) / 2;
}

class BitonicWrapper {
public:
    BitonicWrapper(unsigned n, rtl::EvalMode evalMode)
        : n_(n), stages_(stagesFor(n)),
          netlist_(rtl::bitonicSorterNetlist(n)), inputs_(n, 0), outputs_(n, 0) {
        netlist_.setEvalMode(evalMode);
    }

    void reset() {
        netlist_.reset();
        std::fill(inputs_.begin(), inputs_.end(), 0);
        std::fill(outputs_.begin(), outputs_.end(), 0);
        busyCycles_ = 0;
        done_ = false;
        readPending_ = false;
    }

    void tick(const G5rRtlInput& in, G5rRtlOutput& out) {
        std::memset(&out, 0, sizeof(out));

        if (readPending_) {
            out.dev_resp_valid = 1;
            out.dev_rdata = readReg(readAddr_);
            readPending_ = false;
        }

        if (in.dev_valid != 0) {
            out.dev_ready = 1;
            if (in.dev_write != 0) {
                writeReg(in.dev_addr, in.dev_wdata);
            } else {
                readPending_ = true;
                readAddr_ = in.dev_addr;
            }
        }

        if (busyCycles_ > 0) {
            if (--busyCycles_ == 0) {
                // Network output settles after the pipeline depth elapses.
                for (unsigned i = 0; i < n_; ++i) {
                    netlist_.setInput("in" + std::to_string(i), inputs_[i]);
                }
                netlist_.eval();
                for (unsigned i = 0; i < n_; ++i) {
                    outputs_[i] = netlist_.output("out" + std::to_string(i));
                }
                done_ = true;
            }
        }

        out.irq = done_ ? 1 : 0;
        out.done = done_ ? 1 : 0;
        // Idle whenever the sort pipeline is not counting down, no CSB
        // read awaits its reply beat, and no armed trigger capture needs to
        // see every cycle: with stable inputs nothing changes.
        out.idle_hint = busyCycles_ == 0 && !readPending_ &&
                                (capture_ == nullptr || !capture_->active())
                            ? 1
                            : 0;
        ++cycle_;
        if (capture_ != nullptr) capture_->cycle(cycle_);
    }

    int traceStart(const char* path) {
        // The GHDL path has no always-on runtime VCD toggling (as in the
        // paper), but trigger-windowed capture works on interpreted
        // netlists: GEM5RTL_TRIGGER watches any named net.
        if (const char* spec = std::getenv("GEM5RTL_TRIGGER"); spec != nullptr &&
                                                               *spec != '\0') {
            capture_ = obs::TriggerCapture::fromSpecString(spec, path,
                                                           rtl::netlistSignals(netlist_));
            return capture_ != nullptr ? 0 : 1;
        }
        return 1;
    }

    void traceStop() { capture_.reset(); }

private:
    void writeReg(std::uint64_t addr, std::uint64_t data) {
        const std::uint64_t off = addr & 0x3FF;
        if (off < 8ull * n_) {
            inputs_[off / 8] = data;
        } else if (off == 0x200 && (data & 1) != 0) {
            busyCycles_ = stages_;
            done_ = false;
        }
    }

    std::uint64_t readReg(std::uint64_t addr) const {
        const std::uint64_t off = addr & 0x3FF;
        if (off >= 0x100 && off < 0x100 + 8ull * n_) return outputs_[(off - 0x100) / 8];
        if (off == 0x208) return (busyCycles_ > 0 ? 1u : 0u) | (done_ ? 2u : 0u);
        if (off == 0x210) return n_;
        return 0;
    }

    unsigned n_;
    unsigned stages_;
    rtl::Netlist netlist_;
    std::vector<std::uint64_t> inputs_;
    std::vector<std::uint64_t> outputs_;
    unsigned busyCycles_ = 0;
    bool done_ = false;
    bool readPending_ = false;
    std::uint64_t readAddr_ = 0;
    std::uint64_t cycle_ = 0;
    std::unique_ptr<obs::TriggerCapture> capture_;
};

void* bitonicCreate(const char* config) {
    try {
        return new BitonicWrapper(parseN(config), parseEvalMode(config));
    } catch (const std::exception&) {
        return nullptr;
    }
}
void bitonicDestroy(void* model) { delete static_cast<BitonicWrapper*>(model); }
void bitonicReset(void* model) { static_cast<BitonicWrapper*>(model)->reset(); }
void bitonicTick(void* model, const G5rRtlInput* in, G5rRtlOutput* out) {
    static_cast<BitonicWrapper*>(model)->tick(*in, *out);
}
int bitonicTraceStart(void* model, const char* path) {
    return static_cast<BitonicWrapper*>(model)->traceStart(path);
}
void bitonicTraceStop(void* model) { static_cast<BitonicWrapper*>(model)->traceStop(); }

constexpr G5rRtlModelApi kBitonicApi = {
    G5R_RTL_ABI_VERSION, "bitonic",
    bitonicCreate, bitonicDestroy, bitonicReset, bitonicTick,
    bitonicTraceStart, bitonicTraceStop,
};

}  // namespace
}  // namespace g5r::models

extern "C" const G5rRtlModelApi* g5r_bitonic_model_api() { return &g5r::models::kBitonicApi; }
