#include "lint/baseline.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "exp/json.hh"

namespace g5r::lint {

std::size_t Baseline::total() const {
    std::size_t n = 0;
    for (const auto& [fp, count] : entries) n += count;
    return n;
}

std::string fingerprint(const Diagnostic& d) {
    std::ostringstream os;
    os << d.ruleId << '|' << d.loc.file << '|' << severityName(d.severity);
    for (const auto& net : d.nets) os << '|' << net;
    return os.str();
}

Baseline makeBaseline(const Report& report) {
    std::map<std::string, std::size_t> counts;
    for (const auto& d : report.diagnostics()) ++counts[fingerprint(d)];
    Baseline base;
    base.entries.assign(counts.begin(), counts.end());
    return base;
}

Report applyBaseline(const Report& report, const Baseline& base,
                     std::size_t* suppressed) {
    std::map<std::string, std::size_t> budget;
    for (const auto& [fp, count] : base.entries) budget[fp] += count;

    Report out;
    std::size_t dropped = 0;
    for (const auto& d : report.diagnostics()) {
        if (const auto it = budget.find(fingerprint(d));
            it != budget.end() && it->second > 0) {
            --it->second;
            ++dropped;
            continue;
        }
        out.add(d.ruleId, d.severity, d.message, d.loc, d.nets);
    }
    if (suppressed) *suppressed = dropped;
    return out;
}

Baseline loadBaseline(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read baseline file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();

    const exp::Json doc = exp::Json::parse(buf.str());
    if (!doc.isObject() || !doc.contains("suppressions")) {
        throw std::runtime_error("malformed baseline file (no 'suppressions'): " +
                                 path);
    }
    Baseline base;
    for (const auto& entry : doc.at("suppressions").items()) {
        const std::string& fp = entry.at("fingerprint").asString();
        const std::int64_t count = entry.at("count").asInt();
        if (count < 1) {
            throw std::runtime_error("malformed baseline count for '" + fp +
                                     "': " + path);
        }
        base.entries.emplace_back(fp, static_cast<std::size_t>(count));
    }
    return base;
}

void saveBaseline(const Baseline& base, const std::string& path) {
    exp::Json doc = exp::Json::object();
    doc["version"] = 1;
    exp::Json list = exp::Json::array();
    auto sorted = base.entries;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [fp, count] : sorted) {
        exp::Json entry = exp::Json::object();
        entry["fingerprint"] = fp;
        entry["count"] = static_cast<std::uint64_t>(count);
        list.push(std::move(entry));
    }
    doc["suppressions"] = std::move(list);

    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write baseline file: " + path);
    out << doc.dump(2) << '\n';
    if (!out) throw std::runtime_error("failed writing baseline file: " + path);
}

}  // namespace g5r::lint
