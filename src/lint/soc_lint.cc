#include "lint/soc_lint.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace g5r::lint {
namespace {

std::string hexRange(Addr start, Addr end) {
    std::ostringstream os;
    os << "0x" << std::hex << start << "..0x" << end;
    return os.str();
}

/// Two interleave specs select the same address subset iff they use the
/// same (shift, bits) — or neither interleaves at all.
bool sameInterleave(const RouteSpec& a, const RouteSpec& b) {
    if (a.intlvBits != b.intlvBits) return false;
    return a.intlvBits == 0 || a.intlvShift == b.intlvShift;
}

std::uint64_t matchOf(const RouteSpec& r) {
    const std::uint64_t mask = (std::uint64_t{1} << r.intlvBits) - 1;
    return r.intlvMatch & mask;
}

bool containsRange(const AddrRange& outer, const AddrRange& inner) {
    return outer.start <= inner.start && outer.end >= inner.end;
}

}  // namespace

void lintXbar(const Xbar& xbar, Report& report) {
    for (unsigned i = 0; i < xbar.numCpuSidePorts(); ++i) {
        const auto& port = xbar.cpuSidePort(i);
        if (!port.isBound()) {
            report.add("G5R-SOC-UNBOUND-PORT", Severity::kError,
                       "cpu-side port '" + port.name() + "' is unbound", {},
                       {port.name()});
        }
    }
    for (unsigned i = 0; i < xbar.numMemSidePorts(); ++i) {
        const auto& port = xbar.memSidePort(i);
        if (!port.isBound()) {
            report.add("G5R-SOC-UNBOUND-PORT", Severity::kError,
                       "mem-side port '" + port.name() + "' is unbound", {},
                       {port.name()});
        }
    }

    const auto& routes = xbar.routes();
    if (routes.empty()) {
        report.add("G5R-SOC-NO-ROUTE", Severity::kWarning,
                   "crossbar '" + xbar.name() + "' has no downstream routes", {},
                   {xbar.name()});
        return;
    }

    for (unsigned j = 0; j < routes.size(); ++j) {
        const RouteSpec& b = routes[j];
        const std::string portJ = xbar.memSidePort(j).name();
        for (unsigned i = 0; i < j; ++i) {
            const RouteSpec& a = routes[i];
            if (!a.range.overlaps(b.range)) continue;
            const std::string portI = xbar.memSidePort(i).name();

            // An earlier catch-all over b's whole range: b can never win —
            // route() picks the first match.
            if (a.intlvBits == 0 && containsRange(a.range, b.range)) {
                report.add("G5R-SOC-ROUTE-SHADOW", Severity::kError,
                           "route of '" + portJ + "' is fully shadowed by '" +
                               portI + "' (" + hexRange(a.range.start, a.range.end) +
                               "); it can never match",
                           {}, {portJ, portI});
                continue;
            }
            if (sameInterleave(a, b)) {
                if (a.intlvBits != 0 && matchOf(a) != matchOf(b)) continue;  // Disjoint stripes.
                if (containsRange(a.range, b.range)) {
                    report.add("G5R-SOC-ROUTE-SHADOW", Severity::kError,
                               "route of '" + portJ + "' repeats the range and "
                               "stripe of earlier '" + portI + "'; it can never match",
                               {}, {portJ, portI});
                } else {
                    report.add("G5R-SOC-ROUTE-OVERLAP", Severity::kError,
                               "routes of '" + portI + "' and '" + portJ +
                                   "' both match " +
                                   hexRange(std::max(a.range.start, b.range.start),
                                            std::min(a.range.end, b.range.end)),
                               {}, {portI, portJ});
                }
            } else {
                report.add("G5R-SOC-AMBIGUOUS-ROUTE", Severity::kWarning,
                           "routes of '" + portI + "' and '" + portJ +
                               "' overlap with different interleaving; the "
                               "earlier route wins where both match",
                           {}, {portI, portJ});
            }
        }
    }
}

void lintRouteCoverage(const Xbar& xbar, const AddrRange& range, Report& report) {
    if (!range.valid()) return;

    // A stripe group covers its range iff every match value is present.
    struct Group {
        AddrRange range;
        unsigned shift, bits;
        std::vector<bool> seen;
    };
    std::vector<Group> groups;
    std::vector<AddrRange> covered;
    for (const RouteSpec& r : xbar.routes()) {
        if (!r.range.valid()) continue;
        if (r.intlvBits == 0) {
            covered.push_back(r.range);
            continue;
        }
        if (r.intlvBits >= 20) continue;  // Implausible; treat as no coverage.
        Group* group = nullptr;
        for (auto& existing : groups) {
            if (existing.range.start == r.range.start && existing.range.end == r.range.end &&
                existing.shift == r.intlvShift && existing.bits == r.intlvBits) {
                group = &existing;
                break;
            }
        }
        if (group == nullptr) {
            groups.push_back(Group{r.range, r.intlvShift, r.intlvBits,
                                   std::vector<bool>(std::size_t{1} << r.intlvBits, false)});
            group = &groups.back();
        }
        group->seen[matchOf(r)] = true;
    }
    for (const auto& group : groups) {
        if (std::all_of(group.seen.begin(), group.seen.end(), [](bool b) { return b; })) {
            covered.push_back(group.range);
        }
    }

    std::sort(covered.begin(), covered.end(),
              [](const AddrRange& a, const AddrRange& b) { return a.start < b.start; });
    Addr cursor = range.start;
    const auto reportGap = [&](Addr gapStart, Addr gapEnd) {
        report.add("G5R-SOC-UNREACHABLE-MEM", Severity::kWarning,
                   "crossbar '" + xbar.name() + "': addresses " +
                       hexRange(gapStart, gapEnd) +
                       " are not fully covered by any route; accesses there "
                       "panic with \"no route\"",
                   {}, {xbar.name()});
    };
    for (const AddrRange& c : covered) {
        if (cursor >= range.end) break;
        if (c.end <= cursor) continue;
        if (c.start > cursor) reportGap(cursor, std::min(c.start, range.end));
        cursor = std::max(cursor, c.end);
    }
    if (cursor < range.end) reportGap(cursor, range.end);
}

void lintDmaSpmPath(const DmaEngine& dma, const Spm& spm, const AddrRange& staged,
                    Report& report) {
    const auto checkBound = [&](const auto& port) {
        if (port.isBound()) return;
        report.add("G5R-SOC-DMASPM-UNBOUND", Severity::kError,
                   "dmaSpm path port '" + port.name() +
                       "' is unbound; the first transfer through it would panic",
                   {}, {port.name()});
    };
    checkBound(dma.memPort());
    checkBound(dma.spmPort());
    checkBound(spm.cpuSidePort());
    checkBound(spm.memSidePort());

    if (staged.valid() && !containsRange(spm.range(), staged)) {
        report.add("G5R-SOC-DMASPM-RANGE", Severity::kError,
                   "SPM window " + hexRange(spm.range().start, spm.range().end) +
                       " does not cover the staged range " +
                       hexRange(staged.start, staged.end),
                   {}, {spm.cpuSidePort().name()});
    }
}

}  // namespace g5r::lint
