// Baseline suppression for g5r-lint: adopt an existing codebase without
// drowning in its pre-existing findings.
//
// A baseline file records a fingerprint of every finding present when it was
// written (`g5r-lint --write-baseline lint.base <files>`). A later run with
// `--baseline lint.base` drops findings whose fingerprint appears in the
// file, so only *new* findings remain — the standard ratchet workflow.
//
// Fingerprints are line-independent (ruleId | file | severity | nets), so
// unrelated edits that shift line numbers do not resurrect suppressed
// findings. Identical fingerprints are counted: a baseline with two
// occurrences suppresses at most two, and a third becomes visible.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostics.hh"

namespace g5r::lint {

struct Baseline {
    /// Fingerprint -> number of baselined occurrences.
    std::vector<std::pair<std::string, std::size_t>> entries;

    std::size_t total() const;
};

/// Stable fingerprint of one finding (line numbers excluded, see above).
std::string fingerprint(const Diagnostic& d);

/// Build a baseline covering every finding in @p report.
Baseline makeBaseline(const Report& report);

/// Remove findings covered by @p base; returns the survivors in order.
/// @p suppressed (optional) receives the number of findings dropped.
Report applyBaseline(const Report& report, const Baseline& base,
                     std::size_t* suppressed = nullptr);

/// JSON (de)serialization. load() throws std::runtime_error on unreadable
/// or malformed files; save() throws on I/O failure.
Baseline loadBaseline(const std::string& path);
void saveBaseline(const Baseline& base, const std::string& path);

}  // namespace g5r::lint
