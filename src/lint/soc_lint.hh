// Static analysis over elaborated SoC interconnect: post-construction
// checks that catch wiring bugs before a single packet moves.
//
// Rules:
//   G5R-SOC-UNBOUND-PORT    error    crossbar port with no peer — the first
//                                    packet through it would panic
//   G5R-SOC-ROUTE-OVERLAP   error    two routes with identical interleaving
//                                    both match some address (ambiguous)
//   G5R-SOC-ROUTE-SHADOW    error    route fully covered by earlier routes;
//                                    its device is unreachable
//   G5R-SOC-AMBIGUOUS-ROUTE warning  routes with *different* interleaving
//                                    overlap; first-match-wins resolves it,
//                                    but the intent is suspect
//   G5R-SOC-UNREACHABLE-MEM warning  part of an address range no route
//                                    covers — accesses there panic "no route"
//   G5R-SOC-NO-ROUTE        warning  crossbar has no downstream routes
//   G5R-SOC-DMASPM-UNBOUND  error    DMA or SPM port of a dmaSpm memory path
//                                    left unbound — transfers would panic
//   G5R-SOC-DMASPM-RANGE    error    the SPM window does not cover the range
//                                    the DMA stages into it
#pragma once

#include "lint/diagnostics.hh"
#include "mem/addr_range.hh"
#include "mem/dma.hh"
#include "mem/spm.hh"
#include "mem/xbar.hh"

namespace g5r::lint {

/// Port-binding and route-table checks for one crossbar.
void lintXbar(const Xbar& xbar, Report& report);

/// Check that every address in @p range is matched by some route of
/// @p xbar (bank/channel interleaving is understood: a group of routes over
/// the same range with the same shift/bits covers it when every match value
/// is present). Reports G5R-SOC-UNREACHABLE-MEM otherwise.
void lintRouteCoverage(const Xbar& xbar, const AddrRange& range, Report& report);

/// Structural checks over one dmaSpm memory path: all four DMA/SPM ports
/// bound (G5R-SOC-DMASPM-UNBOUND), and the SPM window covering @p staged —
/// the range the DMA prefetches into it (G5R-SOC-DMASPM-RANGE).
void lintDmaSpmPath(const DmaEngine& dma, const Spm& spm, const AddrRange& staged,
                    Report& report);

}  // namespace g5r::lint
