#include "lint/netlist_lint.hh"

#include <algorithm>
#include <sstream>

#include "rtl/netlist.hh"

namespace g5r::lint {
namespace {

using rtl::NetOp;
using rtl::NetlistGraph;

/// Combinational fan-out adjacency: edge s -> c when comb node c reads s.
/// A register's data input is a sequential edge and is deliberately absent.
std::vector<std::vector<int>> combFanout(const NetlistGraph& g) {
    std::vector<std::vector<int>> out(g.nodes.size());
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        const auto& node = g.nodes[i];
        if (rtl::netOpIsSource(node.op)) continue;
        for (const int s : node.src) {
            if (s >= 0) out[s].push_back(static_cast<int>(i));
        }
    }
    return out;
}

/// Iterative Tarjan; returns SCCs ordered by their smallest member index.
std::vector<std::vector<int>> stronglyConnected(
    const std::vector<std::vector<int>>& out) {
    const int n = static_cast<int>(out.size());
    std::vector<int> index(n, -1), low(n, 0), stack;
    std::vector<bool> onStack(n, false);
    std::vector<std::vector<int>> sccs;
    int counter = 0;

    struct Frame {
        int v;
        std::size_t edge;
    };
    for (int root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        std::vector<Frame> call{{root, 0}};
        while (!call.empty()) {
            Frame& f = call.back();
            const int v = f.v;
            if (f.edge == 0) {
                index[v] = low[v] = counter++;
                stack.push_back(v);
                onStack[v] = true;
            }
            if (f.edge < out[v].size()) {
                const int w = out[v][f.edge++];
                if (index[w] == -1) {
                    call.push_back(Frame{w, 0});
                } else if (onStack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
            } else {
                if (low[v] == index[v]) {
                    std::vector<int> scc;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        scc.push_back(w);
                    } while (w != v);
                    std::sort(scc.begin(), scc.end());
                    sccs.push_back(std::move(scc));
                }
                call.pop_back();
                if (!call.empty()) {
                    low[call.back().v] = std::min(low[call.back().v], low[v]);
                }
            }
        }
    }
    std::sort(sccs.begin(), sccs.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return sccs;
}

/// A cycle start -> ... -> start inside one SCC (every member has such a
/// path by strong connectivity). Returns node indices beginning at start.
std::vector<int> cycleThrough(int start, const std::vector<bool>& inScc,
                              const std::vector<std::vector<int>>& out) {
    std::vector<int> path{start};
    std::vector<std::size_t> next{0};
    std::vector<bool> visited(out.size(), false);
    visited[start] = true;
    while (!path.empty()) {
        const int u = path.back();
        if (next.back() < out[u].size()) {
            const int v = out[u][next.back()++];
            if (!inScc[v]) continue;
            if (v == start) return path;
            if (!visited[v]) {
                visited[v] = true;
                path.push_back(v);
                next.push_back(0);
            }
        } else {
            path.pop_back();
            next.pop_back();
        }
    }
    return {start};  // Unreachable for a genuine SCC; defensive.
}

void lintStructure(const NetlistGraph& g, const std::string& file, Report& rep) {
    const auto loc = [&](std::size_t line) { return SourceLoc{file, line}; };

    for (const auto& e : g.errors) {
        rep.add("G5R-SYNTAX", Severity::kError, e.message, loc(e.line));
    }
    for (const auto& r : g.redefinitions) {
        rep.add("G5R-MULTI-DRIVER", Severity::kError,
                "net '" + r.name + "' is driven more than once (first driver at line " +
                    std::to_string(r.firstLine) + ")",
                loc(r.line), {r.name});
    }
    for (const auto& u : g.unresolved) {
        rep.add("G5R-UNDRIVEN", Severity::kError,
                "'" + u.user + "' references net '" + u.ref + "', which has no driver",
                loc(u.line), {u.ref});
    }
}

void lintCombLoops(const NetlistGraph& g, const std::string& file, Report& rep) {
    const auto out = combFanout(g);
    const int n = static_cast<int>(g.nodes.size());
    for (const auto& scc : stronglyConnected(out)) {
        bool cyclic = scc.size() > 1;
        if (!cyclic) {  // Trivial SCC: cyclic only via a self-edge.
            const int v = scc.front();
            cyclic = std::find(out[v].begin(), out[v].end(), v) != out[v].end();
        }
        if (!cyclic) continue;

        std::vector<bool> inScc(n, false);
        for (const int v : scc) inScc[v] = true;
        const auto cycle = cycleThrough(scc.front(), inScc, out);

        std::vector<std::string> nets;
        nets.reserve(cycle.size() + 1);
        for (const int v : cycle) nets.push_back(g.nodes[v].name);
        nets.push_back(g.nodes[cycle.front()].name);  // Close the loop.

        std::ostringstream msg;
        msg << "combinational loop through " << scc.size() << " net(s): ";
        for (std::size_t i = 0; i < nets.size(); ++i) {
            if (i != 0) msg << " -> ";
            msg << nets[i];
        }
        rep.add("G5R-COMB-LOOP", Severity::kError, msg.str(),
                SourceLoc{file, g.nodes[cycle.front()].line}, std::move(nets));
    }
}

void lintConnectivity(const NetlistGraph& g, const std::string& file, Report& rep) {
    const int n = static_cast<int>(g.nodes.size());
    std::vector<bool> consumed(n, false), exported(n, false);
    for (const auto& node : g.nodes) {
        for (const int s : node.src) {
            if (s >= 0) consumed[s] = true;
        }
    }
    for (const auto& o : g.outputs) {
        if (o.target >= 0) exported[o.target] = true;
    }

    for (int i = 0; i < n; ++i) {
        if (consumed[i] || exported[i]) continue;
        const auto& node = g.nodes[i];
        if (node.op == NetOp::kInput) {
            rep.add("G5R-FLOATING-INPUT", Severity::kWarning,
                    "input '" + node.name + "' is consumed by nothing (floating pin)",
                    SourceLoc{file, node.line}, {node.name});
        } else {
            rep.add("G5R-FLOATING-NET", Severity::kWarning,
                    "net '" + node.name + "' drives nothing and is not an output",
                    SourceLoc{file, node.line}, {node.name});
        }
    }

    if (g.outputs.empty()) {
        if (n > 0) {
            rep.add("G5R-NO-OUTPUT", Severity::kWarning,
                    "netlist declares no outputs; nothing is observable",
                    SourceLoc{file, 0});
        }
        return;  // Dead-cone analysis is all-dead noise without outputs.
    }

    // Dead cone: nodes from which no output is reachable == nodes not
    // backward-reachable from any output target (regs traversed too: logic
    // feeding only a reg that feeds an output is alive).
    std::vector<bool> live(n, false);
    std::vector<int> work;
    for (const auto& o : g.outputs) {
        if (o.target >= 0 && !live[o.target]) {
            live[o.target] = true;
            work.push_back(o.target);
        }
    }
    while (!work.empty()) {
        const int v = work.back();
        work.pop_back();
        for (const int s : g.nodes[v].src) {
            if (s >= 0 && !live[s]) {
                live[s] = true;
                work.push_back(s);
            }
        }
    }
    std::vector<std::string> dead;
    std::size_t firstLine = 0;
    for (int i = 0; i < n; ++i) {
        if (live[i]) continue;
        if (firstLine == 0) firstLine = g.nodes[i].line;
        dead.push_back(g.nodes[i].name);
    }
    if (!dead.empty()) {
        const std::size_t count = dead.size();
        rep.add("G5R-DEAD-CONE", Severity::kWarning,
                std::to_string(count) +
                    " net(s) reach no declared output (dead logic cone)",
                SourceLoc{file, firstLine}, std::move(dead));
    }
}

void lintWidths(const NetlistGraph& g, const std::string& file, Report& rep) {
    const auto width = [&](int idx) -> int {
        return idx >= 0 ? static_cast<int>(g.nodes[idx].width) : -1;
    };
    for (const auto& node : g.nodes) {
        const SourceLoc at{file, node.line};
        if (node.op == NetOp::kAdd || node.op == NetOp::kSub) {
            const int wa = width(node.src[0]), wb = width(node.src[1]);
            if (wa > 0 && wb > 0 && wa != wb) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': " + std::string(netOpName(node.op)) +
                            " operands are " + std::to_string(wa) + " and " +
                            std::to_string(wb) + " bits wide",
                        at,
                        {node.name, g.nodes[node.src[0]].name,
                         g.nodes[node.src[1]].name});
            }
            const int widest = std::max(wa, wb);
            if (widest > 0 && static_cast<int>(node.width) < widest) {
                rep.add("G5R-WIDTH-TRUNC", Severity::kWarning,
                        "'" + node.name + "' is " + std::to_string(node.width) +
                            " bits wide but an operand is " + std::to_string(widest) +
                            " bits; high bits are dropped",
                        at, {node.name});
            }
        } else if (node.op == NetOp::kMux) {
            const int ws = width(node.src[0]);
            const int wa = width(node.src[1]), wb = width(node.src[2]);
            if (ws > 1) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': mux select '" +
                            g.nodes[node.src[0]].name + "' is " + std::to_string(ws) +
                            " bits wide; expected 1",
                        at, {node.name, g.nodes[node.src[0]].name});
            }
            if (wa > 0 && wb > 0 && wa != wb) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': mux data operands are " +
                            std::to_string(wa) + " and " + std::to_string(wb) +
                            " bits wide",
                        at,
                        {node.name, g.nodes[node.src[1]].name,
                         g.nodes[node.src[2]].name});
            }
            const int widest = std::max(wa, wb);
            if (widest > 0 && static_cast<int>(node.width) < widest) {
                rep.add("G5R-WIDTH-TRUNC", Severity::kWarning,
                        "'" + node.name + "' is " + std::to_string(node.width) +
                            " bits wide but a data operand is " +
                            std::to_string(widest) + " bits; high bits are dropped",
                        at, {node.name});
            }
        }
    }
}

}  // namespace

Report run(const NetlistGraph& graph, const std::string& file) {
    Report rep;
    lintStructure(graph, file, rep);
    lintCombLoops(graph, file, rep);
    lintConnectivity(graph, file, rep);
    lintWidths(graph, file, rep);
    return rep;
}

Report runNetlistSource(std::string_view source, const std::string& file) {
    return run(rtl::parseNetlistGraph(source), file);
}

Report run(const rtl::Netlist& netlist, const std::string& file) {
    return run(netlist.graph(), file);
}

}  // namespace g5r::lint
