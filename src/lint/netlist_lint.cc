#include "lint/netlist_lint.hh"

#include <algorithm>
#include <sstream>

#include "rtl/analysis/cones.hh"
#include "rtl/analysis/const_prop.hh"
#include "rtl/analysis/levelize.hh"
#include "rtl/netlist.hh"

namespace g5r::lint {
namespace {

using rtl::NetOp;
using rtl::NetlistGraph;
using rtl::analysis::ConstProp;
using rtl::analysis::DuplicateCones;
using rtl::analysis::LevelSchedule;
using rtl::analysis::ValueRange;

/// A cycle start -> ... -> start inside one SCC (every member has such a
/// path by strong connectivity). Returns node indices beginning at start.
std::vector<int> cycleThrough(int start, const std::vector<bool>& inScc,
                              const std::vector<std::vector<int>>& out) {
    std::vector<int> path{start};
    std::vector<std::size_t> next{0};
    std::vector<bool> visited(out.size(), false);
    visited[start] = true;
    while (!path.empty()) {
        const int u = path.back();
        if (next.back() < out[u].size()) {
            const int v = out[u][next.back()++];
            if (!inScc[v]) continue;
            if (v == start) return path;
            if (!visited[v]) {
                visited[v] = true;
                path.push_back(v);
                next.push_back(0);
            }
        } else {
            path.pop_back();
            next.pop_back();
        }
    }
    return {start};  // Unreachable for a genuine SCC; defensive.
}

void lintStructure(const NetlistGraph& g, const std::string& file, Report& rep) {
    const auto loc = [&](std::size_t line) { return SourceLoc{file, line}; };

    for (const auto& e : g.errors) {
        rep.add("G5R-SYNTAX", Severity::kError, e.message, loc(e.line));
    }
    for (const auto& r : g.redefinitions) {
        rep.add("G5R-MULTI-DRIVER", Severity::kError,
                "net '" + r.name + "' is driven more than once (first driver at line " +
                    std::to_string(r.firstLine) + ")",
                loc(r.line), {r.name});
    }
    for (const auto& u : g.unresolved) {
        rep.add("G5R-UNDRIVEN", Severity::kError,
                "'" + u.user + "' references net '" + u.ref + "', which has no driver",
                loc(u.line), {u.ref});
    }
}

void lintCombLoops(const NetlistGraph& g, const LevelSchedule& sched,
                   const std::string& file, Report& rep) {
    const auto out = rtl::analysis::combFanout(g);
    const int n = static_cast<int>(g.nodes.size());
    for (const auto& scc : sched.cyclicSccs) {
        std::vector<bool> inScc(n, false);
        for (const int v : scc) inScc[v] = true;
        const auto cycle = cycleThrough(scc.front(), inScc, out);

        std::vector<std::string> nets;
        nets.reserve(cycle.size() + 1);
        for (const int v : cycle) nets.push_back(g.nodes[v].name);
        nets.push_back(g.nodes[cycle.front()].name);  // Close the loop.

        std::ostringstream msg;
        msg << "combinational loop through " << scc.size() << " net(s): ";
        for (std::size_t i = 0; i < nets.size(); ++i) {
            if (i != 0) msg << " -> ";
            msg << nets[i];
        }
        rep.add("G5R-COMB-LOOP", Severity::kError, msg.str(),
                SourceLoc{file, g.nodes[cycle.front()].line}, std::move(nets));
    }
}

void lintConnectivity(const NetlistGraph& g, const std::string& file, Report& rep) {
    const int n = static_cast<int>(g.nodes.size());
    std::vector<bool> consumed(n, false), exported(n, false);
    for (const auto& node : g.nodes) {
        for (const int s : node.src) {
            if (s >= 0) consumed[s] = true;
        }
    }
    for (const auto& o : g.outputs) {
        if (o.target >= 0) exported[o.target] = true;
    }

    for (int i = 0; i < n; ++i) {
        if (consumed[i] || exported[i]) continue;
        const auto& node = g.nodes[i];
        if (node.op == NetOp::kInput) {
            rep.add("G5R-FLOATING-INPUT", Severity::kWarning,
                    "input '" + node.name + "' is consumed by nothing (floating pin)",
                    SourceLoc{file, node.line}, {node.name});
        } else {
            rep.add("G5R-FLOATING-NET", Severity::kWarning,
                    "net '" + node.name + "' drives nothing and is not an output",
                    SourceLoc{file, node.line}, {node.name});
        }
    }

    if (g.outputs.empty()) {
        if (n > 0) {
            rep.add("G5R-NO-OUTPUT", Severity::kWarning,
                    "netlist declares no outputs; nothing is observable",
                    SourceLoc{file, 0});
        }
        return;  // Dead-cone analysis is all-dead noise without outputs.
    }

    // Dead cone: nodes from which no output is reachable == nodes not
    // backward-reachable from any output target (regs traversed too: logic
    // feeding only a reg that feeds an output is alive).
    std::vector<bool> live(n, false);
    std::vector<int> work;
    for (const auto& o : g.outputs) {
        if (o.target >= 0 && !live[o.target]) {
            live[o.target] = true;
            work.push_back(o.target);
        }
    }
    while (!work.empty()) {
        const int v = work.back();
        work.pop_back();
        for (const int s : g.nodes[v].src) {
            if (s >= 0 && !live[s]) {
                live[s] = true;
                work.push_back(s);
            }
        }
    }
    std::vector<std::string> dead;
    std::size_t firstLine = 0;
    for (int i = 0; i < n; ++i) {
        if (live[i]) continue;
        if (firstLine == 0) firstLine = g.nodes[i].line;
        dead.push_back(g.nodes[i].name);
    }
    if (!dead.empty()) {
        const std::size_t count = dead.size();
        rep.add("G5R-DEAD-CONE", Severity::kWarning,
                std::to_string(count) +
                    " net(s) reach no declared output (dead logic cone)",
                SourceLoc{file, firstLine}, std::move(dead));
    }
}

std::string rangeEvidence(const ValueRange& r) {
    std::ostringstream os;
    os << "[" << r.lo << ", " << r.hi << "]";
    return os.str();
}

/// Width rules. Mismatch stays structural; the truncation rules are driven
/// by the value-range analysis: provably benign truncations are silent,
/// provably lossy ones fire G5R-TRUNC-LOSS, the rest fire G5R-WIDTH-TRUNC
/// with the computed range as evidence. `not` is exempt (64-bit inversion
/// always sets bits above the operand width; masking them off is the
/// operator's contract, not data loss), as are compares (1-bit by design).
void lintWidths(const NetlistGraph& g, const ConstProp& cp, const std::string& file,
                Report& rep) {
    const auto width = [&](int idx) -> int {
        return idx >= 0 ? static_cast<int>(g.nodes[idx].width) : -1;
    };
    const auto truncCheck = [&](int i, int widestOperand, const char* what) {
        const auto& node = g.nodes[static_cast<std::size_t>(i)];
        if (widestOperand <= 0 || static_cast<int>(node.width) >= widestOperand) return;
        const std::uint64_t mask =
            node.width >= 64 ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << node.width) - 1);
        const ValueRange& pre = cp.preMask[static_cast<std::size_t>(i)];
        if (pre.hi <= mask) return;  // Proven benign: every value fits.
        const SourceLoc at{file, node.line};
        if (pre.lo > mask) {
            rep.add("G5R-TRUNC-LOSS", Severity::kWarning,
                    "'" + node.name + "' is " + std::to_string(node.width) +
                        " bits wide but every reachable " + what + " value " +
                        rangeEvidence(pre) + " needs " +
                        std::to_string(rtl::analysis::bitsFor(pre.lo)) +
                        "+ bits; data loss is guaranteed",
                    at, {node.name});
        } else {
            rep.add("G5R-WIDTH-TRUNC", Severity::kWarning,
                    "'" + node.name + "' is " + std::to_string(node.width) +
                        " bits wide but the " + what + " value range " +
                        rangeEvidence(pre) + " reaches " +
                        std::to_string(rtl::analysis::bitsFor(pre.hi)) +
                        " bits; high bits are dropped",
                    at, {node.name});
        }
    };

    for (std::size_t idx = 0; idx < g.nodes.size(); ++idx) {
        const auto& node = g.nodes[idx];
        const int i = static_cast<int>(idx);
        const SourceLoc at{file, node.line};
        switch (node.op) {
        case NetOp::kAdd:
        case NetOp::kSub: {
            const int wa = width(node.src[0]), wb = width(node.src[1]);
            if (wa > 0 && wb > 0 && wa != wb) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': " + std::string(netOpName(node.op)) +
                            " operands are " + std::to_string(wa) + " and " +
                            std::to_string(wb) + " bits wide",
                        at,
                        {node.name, g.nodes[node.src[0]].name,
                         g.nodes[node.src[1]].name});
            }
            truncCheck(i, std::max(wa, wb), netOpName(node.op).data());
            break;
        }
        case NetOp::kAnd:
        case NetOp::kOr:
        case NetOp::kXor:
            truncCheck(i, std::max(width(node.src[0]), width(node.src[1])),
                       netOpName(node.op).data());
            break;
        case NetOp::kMux: {
            const int ws = width(node.src[0]);
            const int wa = width(node.src[1]), wb = width(node.src[2]);
            if (ws > 1) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': mux select '" +
                            g.nodes[node.src[0]].name + "' is " + std::to_string(ws) +
                            " bits wide; expected 1",
                        at, {node.name, g.nodes[node.src[0]].name});
            }
            if (wa > 0 && wb > 0 && wa != wb) {
                rep.add("G5R-WIDTH-MISMATCH", Severity::kWarning,
                        "'" + node.name + "': mux data operands are " +
                            std::to_string(wa) + " and " + std::to_string(wb) +
                            " bits wide",
                        at,
                        {node.name, g.nodes[node.src[1]].name,
                         g.nodes[node.src[2]].name});
            }
            truncCheck(i, std::max(wa, wb), "mux data");
            break;
        }
        case NetOp::kReg:
            truncCheck(i, width(node.src[0]), "next-value");
            break;
        default:
            break;
        }
    }
}

/// Provably-constant nets and provably-decided compares. Declared constants
/// and inputs are exempt (they are *supposed* to be what they are), compares
/// get the dedicated always-true/always-false rule, and everything else with
/// a singleton value range is dead logic the dead-cone rule cannot see.
void lintConstants(const NetlistGraph& g, const ConstProp& cp, const std::string& file,
                   Report& rep) {
    for (std::size_t idx = 0; idx < g.nodes.size(); ++idx) {
        const auto& node = g.nodes[idx];
        const int i = static_cast<int>(idx);
        const SourceLoc at{file, node.line};
        const ValueRange& r = cp.range[idx];
        const bool isCompare =
            node.op == NetOp::kLt || node.op == NetOp::kLtu || node.op == NetOp::kEq;

        if (isCompare) {
            if (!r.constant()) continue;
            std::vector<std::string> nets{node.name};
            for (const int s : node.src) {
                if (s >= 0) nets.push_back(g.nodes[s].name);
            }
            rep.add("G5R-CONST-COMPARE", Severity::kWarning,
                    "compare '" + node.name + "' (" + std::string(netOpName(node.op)) +
                        ") is provably always " + (r.lo != 0 ? "true" : "false"),
                    at, std::move(nets));
            continue;
        }

        if (node.op == NetOp::kInput || node.op == NetOp::kConst) continue;
        if (!r.constant()) continue;
        if (node.op == NetOp::kReg) {
            rep.add("G5R-CONST-NET", Severity::kWarning,
                    "register '" + node.name + "' is provably stuck at " +
                        std::to_string(r.lo) +
                        (cp.stuckReg[idx] ? " (its reset value)" : ""),
                    at, {node.name});
        } else {
            rep.add("G5R-CONST-NET", Severity::kWarning,
                    "net '" + node.name + "' provably holds the constant " +
                        std::to_string(r.lo) + " (const-driven cone; dead logic)",
                    at, {node.name});
        }
        (void)i;
    }
}

void lintDuplicateCones(const NetlistGraph& g, const DuplicateCones& dup,
                        const std::string& file, Report& rep) {
    for (const auto& cls : dup.classes) {
        std::vector<std::string> nets;
        nets.reserve(cls.nodes.size());
        for (const int v : cls.nodes) nets.push_back(g.nodes[v].name);
        std::ostringstream msg;
        msg << cls.nodes.size() << " structurally identical combinational cones ("
            << cls.coneSize << " node(s) each): '"
            << g.nodes[cls.nodes.front()].name << "' is duplicated by ";
        for (std::size_t m = 1; m < cls.nodes.size(); ++m) {
            if (m != 1) msg << ", ";
            msg << "'" << g.nodes[cls.nodes[m]].name << "'";
        }
        rep.add("G5R-DUP-CONE", Severity::kWarning, msg.str(),
                SourceLoc{file, g.nodes[cls.nodes[1]].line}, std::move(nets));
    }
}

void lintLogicDepth(const NetlistGraph& g, const LevelSchedule& sched,
                    const NetlistLintOptions& opts, const std::string& file,
                    Report& rep) {
    const unsigned depth = sched.depth();
    if (depth <= opts.maxLogicDepth) return;
    // Name one net on the critical level as the anchor.
    const auto& deepest = sched.levels.back();
    int anchor = deepest.empty() ? -1 : deepest.front();
    if (anchor < 0) return;
    rep.add("G5R-DEEP-LOGIC", Severity::kWarning,
            "combinational depth is " + std::to_string(depth) + " levels (budget " +
                std::to_string(opts.maxLogicDepth) +
                "); critical path ends at '" + g.nodes[anchor].name + "'",
            SourceLoc{file, g.nodes[anchor].line}, {g.nodes[anchor].name});
}

}  // namespace

Report run(const NetlistGraph& graph, const std::string& file,
           const NetlistLintOptions& opts) {
    Report rep;
    const LevelSchedule sched = rtl::analysis::levelize(graph);
    const ConstProp cp = rtl::analysis::propagateConstants(graph, sched);
    const DuplicateCones dup = rtl::analysis::findDuplicateCones(graph, sched);

    lintStructure(graph, file, rep);
    lintCombLoops(graph, sched, file, rep);
    lintConnectivity(graph, file, rep);
    lintWidths(graph, cp, file, rep);
    lintConstants(graph, cp, file, rep);
    lintDuplicateCones(graph, dup, file, rep);
    lintLogicDepth(graph, sched, opts, file, rep);
    return rep;
}

Report runNetlistSource(std::string_view source, const std::string& file,
                        const NetlistLintOptions& opts) {
    return run(rtl::parseNetlistGraph(source), file, opts);
}

Report run(const rtl::Netlist& netlist, const std::string& file,
           const NetlistLintOptions& opts) {
    return run(netlist.graph(), file, opts);
}

}  // namespace g5r::lint
