// g5r-lint: static RTL/SoC analysis from the command line.
//
// Lints textual netlist files (the GHDL-path format of rtl/netlist_graph.hh)
// without executing a single cycle, and can lint the built-in generated
// designs ("--builtin bitonic:8"). Exit status: 0 clean or warnings only,
// 1 when any error-severity finding was reported (or warnings under
// --werror), 2 on usage/IO problems.
//
//   g5r-lint [options] <netlist-file>...
//     --json                  machine-readable output (one JSON document; the
//                             per-diagnostic "file" field identifies the input)
//     --werror                treat warnings as errors for the exit status
//     --quiet                 suppress clean-file summaries
//     --builtin <name:N>      lint a generated design (names: bitonic)
//     --list-rules            print the rule registry and exit
//     --max-level <N>         G5R-DEEP-LOGIC budget (default 64 levels)
//     --dump-levels           print each input's canonical level schedule
//     --dump-cones            print each input's duplicate-cone statistics
//     --baseline <file>       suppress findings recorded in a baseline file
//     --write-baseline <file> record current findings as the new baseline
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.hh"
#include "lint/diagnostics.hh"
#include "lint/netlist_lint.hh"
#include "rtl/analysis/cones.hh"
#include "rtl/analysis/levelize.hh"
#include "rtl/netlist.hh"

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: g5r-lint [--json] [--werror] [--quiet] [--list-rules]\n"
          "                [--max-level <N>] [--dump-levels] [--dump-cones]\n"
          "                [--baseline <file>] [--write-baseline <file>]\n"
          "                [--builtin <name:N>] <netlist-file>...\n";
    return code;
}

void listRules(std::ostream& os) {
    for (const auto& rule : g5r::lint::ruleRegistry()) {
        os << rule.id << "  (" << g5r::lint::severityName(rule.defaultSeverity)
           << ")  " << rule.summary << '\n';
    }
}

struct Input {
    std::string label;   ///< Shown in diagnostics ("file.nl", "builtin:bitonic:8").
    std::string source;  ///< Netlist text.
};

bool builtinSource(const std::string& spec, Input& input, std::string& error) {
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    unsigned n = 8;
    if (colon != std::string::npos) {
        try {
            n = static_cast<unsigned>(std::stoul(spec.substr(colon + 1)));
        } catch (const std::exception&) {
            error = "bad builtin size in '" + spec + "'";
            return false;
        }
    }
    if (name == "bitonic") {
        try {
            input.source = g5r::rtl::bitonicSorterNetlist(n);
        } catch (const g5r::rtl::NetlistError& e) {
            error = e.what();
            return false;
        }
        input.label = "builtin:bitonic:" + std::to_string(n);
        return true;
    }
    error = "unknown builtin '" + name + "' (available: bitonic)";
    return false;
}

void dumpLevels(const Input& input, const g5r::rtl::NetlistGraph& g,
                const g5r::rtl::analysis::LevelSchedule& sched, std::ostream& os) {
    os << "== levels: " << input.label << " (depth " << sched.depth() << ", "
       << sched.order.size() << " combinational node(s)"
       << (sched.acyclic() ? "" : ", CYCLIC") << ")\n";
    for (std::size_t level = 0; level < sched.levels.size(); ++level) {
        os << "  L" << level << ':';
        for (const int v : sched.levels[level]) os << ' ' << g.nodes[v].name;
        os << '\n';
    }
}

void dumpCones(const Input& input, const g5r::rtl::NetlistGraph& g,
               const g5r::rtl::analysis::DuplicateCones& dup, std::ostream& os) {
    os << "== cones: " << input.label << ": " << dup.combNodes
       << " combinational node(s), " << dup.distinctCones << " distinct cone(s), "
       << dup.redundantNodes << " redundant node(s) in " << dup.classes.size()
       << " duplicate class(es)\n";
    for (const auto& cls : dup.classes) {
        os << "  class size " << cls.nodes.size() << " (cone " << cls.coneSize
           << " node(s)):";
        for (const int v : cls.nodes) os << ' ' << g.nodes[v].name;
        os << '\n';
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false, werror = false, quiet = false;
    bool wantLevels = false, wantCones = false;
    std::string baselinePath, writeBaselinePath;
    g5r::lint::NetlistLintOptions opts;
    std::vector<Input> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--dump-levels") {
            wantLevels = true;
        } else if (arg == "--dump-cones") {
            wantCones = true;
        } else if (arg == "--max-level") {
            if (++i >= argc) return usage(std::cerr, 2);
            try {
                opts.maxLogicDepth = static_cast<unsigned>(std::stoul(argv[i]));
            } catch (const std::exception&) {
                std::cerr << "g5r-lint: bad --max-level value '" << argv[i] << "'\n";
                return 2;
            }
        } else if (arg == "--baseline") {
            if (++i >= argc) return usage(std::cerr, 2);
            baselinePath = argv[i];
        } else if (arg == "--write-baseline") {
            if (++i >= argc) return usage(std::cerr, 2);
            writeBaselinePath = argv[i];
        } else if (arg == "--list-rules") {
            listRules(std::cout);
            return 0;
        } else if (arg == "--builtin") {
            if (++i >= argc) return usage(std::cerr, 2);
            Input input;
            std::string error;
            if (!builtinSource(argv[i], input, error)) {
                std::cerr << "g5r-lint: " << error << '\n';
                return 2;
            }
            inputs.push_back(std::move(input));
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "g5r-lint: unknown option " << arg << '\n';
            return usage(std::cerr, 2);
        } else {
            std::error_code ec;
            if (!std::filesystem::is_regular_file(arg, ec)) {
                std::cerr << "g5r-lint: not a regular file: " << arg << '\n';
                return 2;
            }
            std::ifstream in(arg);
            if (!in) {
                std::cerr << "g5r-lint: cannot open " << arg << '\n';
                return 2;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            inputs.push_back(Input{arg, ss.str()});
        }
    }
    if (inputs.empty()) return usage(std::cerr, 2);

    g5r::lint::Baseline baseline;
    if (!baselinePath.empty()) {
        try {
            baseline = g5r::lint::loadBaseline(baselinePath);
        } catch (const std::exception& e) {
            std::cerr << "g5r-lint: " << e.what() << '\n';
            return 2;
        }
    }

    // In JSON mode all inputs merge into one document; the per-diagnostic
    // "file" field keeps them apart.
    g5r::lint::Report merged;
    std::size_t errors = 0, warnings = 0, suppressed = 0;
    for (const auto& input : inputs) {
        g5r::lint::Report report =
            g5r::lint::runNetlistSource(input.source, input.label, opts);
        if (!baselinePath.empty()) {
            std::size_t dropped = 0;
            report = g5r::lint::applyBaseline(report, baseline, &dropped);
            suppressed += dropped;
        }
        errors += report.errors();
        warnings += report.warnings();
        merged.merge(report);
        if (!json) {
            if (!report.empty()) {
                g5r::lint::emitText(report, std::cout);
            } else if (!quiet) {
                std::cout << input.label << ": clean\n";
            }
        }
        if (wantLevels || wantCones) {
            // Keep the JSON document on stdout parseable: dumps go to stderr
            // under --json.
            std::ostream& dumpOs = json ? std::cerr : std::cout;
            const auto g = g5r::rtl::parseNetlistGraph(input.source);
            const auto sched = g5r::rtl::analysis::levelize(g);
            if (wantLevels) dumpLevels(input, g, sched, dumpOs);
            if (wantCones) {
                dumpCones(input, g, g5r::rtl::analysis::findDuplicateCones(g, sched),
                          dumpOs);
            }
        }
    }
    if (json) {
        g5r::lint::emitJson(merged, std::cout);
    }
    if (!writeBaselinePath.empty()) {
        try {
            g5r::lint::saveBaseline(g5r::lint::makeBaseline(merged), writeBaselinePath);
        } catch (const std::exception& e) {
            std::cerr << "g5r-lint: " << e.what() << '\n';
            return 2;
        }
        if (!quiet && !json) {
            std::cout << "baseline: wrote " << merged.diagnostics().size()
                      << " finding(s) to " << writeBaselinePath << '\n';
        }
    }
    if (!baselinePath.empty() && !quiet && !json) {
        std::cout << "baseline: suppressed " << suppressed << " finding(s)\n";
    }
    if (!json && !quiet && inputs.size() > 1) {
        std::cout << inputs.size() << " input(s): " << errors << " error(s), "
                  << warnings << " warning(s)\n";
    }
    return (errors > 0 || (werror && warnings > 0)) ? 1 : 0;
}
