// Static analysis over the Verilator-style Module/Reg kernel hierarchy.
//
// Rules:
//   G5R-KRNL-DUP-SIGNAL    error    two registers or submodules share one
//                                   hierarchical name — the VCD writer would
//                                   emit two $var declarations for what looks
//                                   like a single signal, corrupting traces
//   G5R-KRNL-ZERO-WIDTH    error    register declares zero width
//   G5R-KRNL-NEVER-LATCHED warning  the design has latched at least one
//                                   register, but this one never latched —
//                                   a submodule missing from tick()/
//                                   commitCycle() coverage
#pragma once

#include "lint/diagnostics.hh"
#include "rtl/kernel.hh"

namespace g5r::lint {

/// Walk the hierarchy under @p root and run every kernel-model rule.
Report run(const rtl::Module& root);

}  // namespace g5r::lint
