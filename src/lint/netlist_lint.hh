// Static analysis over parsed netlists (the GHDL-path IR).
//
// Rules (stable IDs, see lint::ruleRegistry()):
//   G5R-SYNTAX          error    unparseable statement
//   G5R-UNDRIVEN        error    operand/output names a net with no driver
//   G5R-MULTI-DRIVER    error    net defined more than once
//   G5R-COMB-LOOP       error    combinational cycle (full path cited)
//   G5R-FLOATING-INPUT  warning  declared input consumed by nothing
//   G5R-FLOATING-NET    warning  non-input net with no consumers, not output
//   G5R-DEAD-CONE       warning  nets that reach no declared output
//   G5R-NO-OUTPUT       warning  netlist exports nothing
//   G5R-WIDTH-MISMATCH  warning  add/sub/mux operand widths disagree
//   G5R-WIDTH-TRUNC     warning  result narrower than an operand
//
// All passes are purely structural: no cycle of the design is executed.
#pragma once

#include <string>
#include <string_view>

#include "lint/diagnostics.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl {
class Netlist;
}

namespace g5r::lint {

/// Run every netlist rule over an already-parsed graph. @p file is used for
/// diagnostic source locations ("" renders as "<netlist>").
Report run(const rtl::NetlistGraph& graph, const std::string& file = "");

/// Parse @p source tolerantly and lint the result.
Report runNetlistSource(std::string_view source, const std::string& file = "");

/// Lint an elaborated (therefore error-free) netlist; only warnings can
/// result, since elaboration already enforced the error rules.
Report run(const rtl::Netlist& netlist, const std::string& file = "");

}  // namespace g5r::lint
