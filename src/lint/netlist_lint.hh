// Static analysis over parsed netlists (the GHDL-path IR).
//
// Structural rules (stable IDs, see lint::ruleRegistry()):
//   G5R-SYNTAX          error    unparseable statement
//   G5R-UNDRIVEN        error    operand/output names a net with no driver
//   G5R-MULTI-DRIVER    error    net defined more than once
//   G5R-COMB-LOOP       error    combinational cycle (full path cited)
//   G5R-FLOATING-INPUT  warning  declared input consumed by nothing
//   G5R-FLOATING-NET    warning  non-input net with no consumers, not output
//   G5R-DEAD-CONE       warning  nets that reach no declared output
//   G5R-NO-OUTPUT       warning  netlist exports nothing
//   G5R-WIDTH-MISMATCH  warning  add/sub/mux operand widths disagree
//
// Semantic rules, driven by the rtl::analysis dataflow layer (levelization,
// value-range constant propagation, cone hashing — src/rtl/analysis/):
//   G5R-WIDTH-TRUNC     warning  result narrower than an operand AND the
//                                value-range analysis cannot prove the
//                                truncation benign; the diagnostic carries
//                                the computed range as evidence. Truncations
//                                proven benign (range fits) are not reported.
//   G5R-TRUNC-LOSS      warning  truncation proven lossy: every reachable
//                                value of the operation drops bits
//   G5R-CONST-NET       warning  non-const net provably stuck at one value
//                                (dead logic beyond G5R-DEAD-CONE's reach)
//   G5R-CONST-COMPARE   warning  lt/ltu/eq provably always-true/always-false
//   G5R-DUP-CONE        warning  structurally identical combinational cones
//   G5R-DEEP-LOGIC      warning  combinational depth exceeds the configured
//                                critical-level budget
//
// All passes are purely structural/static: no cycle of the design is
// executed.
#pragma once

#include <string>
#include <string_view>

#include "lint/diagnostics.hh"
#include "rtl/netlist_graph.hh"

namespace g5r::rtl {
class Netlist;
}

namespace g5r::lint {

struct NetlistLintOptions {
    /// G5R-DEEP-LOGIC fires when the levelized combinational depth exceeds
    /// this many levels (`g5r-lint --max-level N`).
    unsigned maxLogicDepth = 64;
};

/// Run every netlist rule over an already-parsed graph. @p file is used for
/// diagnostic source locations ("" renders as "<netlist>").
Report run(const rtl::NetlistGraph& graph, const std::string& file = "",
           const NetlistLintOptions& opts = {});

/// Parse @p source tolerantly and lint the result.
Report runNetlistSource(std::string_view source, const std::string& file = "",
                        const NetlistLintOptions& opts = {});

/// Lint an elaborated (therefore error-free) netlist; only warnings can
/// result, since elaboration already enforced the error rules.
Report run(const rtl::Netlist& netlist, const std::string& file = "",
           const NetlistLintOptions& opts = {});

}  // namespace g5r::lint
