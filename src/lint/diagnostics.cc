#include "lint/diagnostics.hh"

#include <ostream>
#include <sstream>

namespace g5r::lint {

std::string_view severityName(Severity s) {
    switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    }
    return "unknown";
}

Diagnostic& Report::add(std::string ruleId, Severity severity, std::string message,
                        SourceLoc loc, std::vector<std::string> nets) {
    diags_.push_back(Diagnostic{std::move(ruleId), severity, std::move(message),
                                std::move(loc), std::move(nets)});
    return diags_.back();
}

void Report::merge(const Report& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::size_t Report::count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diags_) {
        if (d.severity == s) ++n;
    }
    return n;
}

std::vector<const Diagnostic*> Report::byRule(std::string_view ruleId) const {
    std::vector<const Diagnostic*> out;
    for (const auto& d : diags_) {
        if (d.ruleId == ruleId) out.push_back(&d);
    }
    return out;
}

std::string formatDiagnostic(const Diagnostic& d) {
    std::ostringstream os;
    if (d.loc.present()) {
        os << (d.loc.file.empty() ? "<netlist>" : d.loc.file);
        if (d.loc.line != 0) os << ':' << d.loc.line;
        os << ": ";
    }
    os << severityName(d.severity) << '[' << d.ruleId << "]: " << d.message;
    if (!d.nets.empty()) {
        // Cycle paths read as chains; everything else as a plain list.
        const char* sep = d.ruleId == "G5R-COMB-LOOP" ? " -> " : ", ";
        os << " [";
        for (std::size_t i = 0; i < d.nets.size(); ++i) {
            if (i != 0) os << sep;
            os << d.nets[i];
        }
        os << ']';
    }
    return os.str();
}

void emitText(const Report& report, std::ostream& os, bool summary) {
    for (const auto& d : report.diagnostics()) os << formatDiagnostic(d) << '\n';
    if (summary) {
        os << report.errors() << " error(s), " << report.warnings()
           << " warning(s) generated.\n";
    }
}

namespace {

void jsonEscape(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

}  // namespace

void emitJson(const Report& report, std::ostream& os) {
    os << "{\"diagnostics\":[";
    bool first = true;
    for (const auto& d : report.diagnostics()) {
        if (!first) os << ',';
        first = false;
        os << "{\"rule\":";
        jsonEscape(os, d.ruleId);
        os << ",\"severity\":";
        jsonEscape(os, severityName(d.severity));
        os << ",\"message\":";
        jsonEscape(os, d.message);
        os << ",\"file\":";
        jsonEscape(os, d.loc.file);
        os << ",\"line\":" << d.loc.line << ",\"nets\":[";
        for (std::size_t i = 0; i < d.nets.size(); ++i) {
            if (i != 0) os << ',';
            jsonEscape(os, d.nets[i]);
        }
        os << "]}";
    }
    os << "],\"errors\":" << report.errors() << ",\"warnings\":" << report.warnings()
       << "}\n";
}

const std::vector<RuleInfo>& ruleRegistry() {
    static const std::vector<RuleInfo> kRules = {
        // Netlist passes (src/lint/netlist_lint.cc).
        {"G5R-SYNTAX", Severity::kError, "netlist statement could not be parsed"},
        {"G5R-UNDRIVEN", Severity::kError, "operand or output references a net with no driver"},
        {"G5R-MULTI-DRIVER", Severity::kError, "net is defined (driven) more than once"},
        {"G5R-COMB-LOOP", Severity::kError,
         "combinational cycle; the diagnostic names every net on the cycle path"},
        {"G5R-FLOATING-INPUT", Severity::kWarning,
         "declared input is consumed by nothing (floating pin)"},
        {"G5R-FLOATING-NET", Severity::kWarning,
         "net has no consumers and is not an output"},
        {"G5R-DEAD-CONE", Severity::kWarning,
         "nets from which no declared output is reachable"},
        {"G5R-NO-OUTPUT", Severity::kWarning, "netlist declares no outputs"},
        {"G5R-WIDTH-MISMATCH", Severity::kWarning,
         "add/sub/mux operand widths disagree, or a mux select is wider than 1 bit"},
        {"G5R-WIDTH-TRUNC", Severity::kWarning,
         "result net is narrower than an operand and the value-range analysis "
         "cannot prove the truncation benign"},
        // Netlist dataflow passes (src/rtl/analysis/, reported by
        // src/lint/netlist_lint.cc).
        {"G5R-TRUNC-LOSS", Severity::kWarning,
         "truncation proven lossy: every reachable value drops high bits"},
        {"G5R-CONST-NET", Severity::kWarning,
         "non-const net or register provably stuck at a single value"},
        {"G5R-CONST-COMPARE", Severity::kWarning,
         "lt/ltu/eq compare provably always true or always false"},
        {"G5R-DUP-CONE", Severity::kWarning,
         "structurally identical combinational cones compute the same value"},
        {"G5R-DEEP-LOGIC", Severity::kWarning,
         "combinational depth exceeds the configured level budget"},
        // Kernel-model passes (src/lint/kernel_lint.cc).
        {"G5R-KRNL-DUP-SIGNAL", Severity::kError,
         "two registers or submodules share one hierarchical name (corrupts VCD)"},
        {"G5R-KRNL-ZERO-WIDTH", Severity::kError, "register declares zero width"},
        {"G5R-KRNL-NEVER-LATCHED", Severity::kWarning,
         "register never latched although the design has ticked"},
        // SoC elaboration passes (src/lint/soc_lint.cc).
        {"G5R-SOC-UNBOUND-PORT", Severity::kError, "crossbar port left unbound"},
        {"G5R-SOC-ROUTE-OVERLAP", Severity::kError,
         "two routes with identical interleaving match the same addresses"},
        {"G5R-SOC-ROUTE-SHADOW", Severity::kError,
         "route is fully shadowed by earlier routes and can never match"},
        {"G5R-SOC-AMBIGUOUS-ROUTE", Severity::kWarning,
         "routes with different interleaving overlap; first match wins"},
        {"G5R-SOC-UNREACHABLE-MEM", Severity::kWarning,
         "part of the memory range is not covered by any route"},
        {"G5R-SOC-NO-ROUTE", Severity::kWarning, "crossbar has no downstream routes"},
    };
    return kRules;
}

const RuleInfo* findRule(std::string_view id) {
    for (const auto& r : ruleRegistry()) {
        if (r.id == id) return &r;
    }
    return nullptr;
}

}  // namespace g5r::lint
