// Shared diagnostics engine for the g5r static-analysis passes.
//
// Every lint pass (netlist, kernel-model, SoC elaboration) reports findings
// through the same vocabulary: a stable machine-readable rule ID
// ("G5R-COMB-LOOP"), a severity, a human message, an optional source
// location (meaningful for textual netlists), and the list of nets/signals/
// ports the finding cites — in a defined order, so combinational-loop
// diagnostics can name every net on the cycle path.
//
// A Report is an ordered collection of diagnostics plus severity counters.
// Two emitters are provided: a compiler-style text renderer
// ("file:12: error[G5R-COMB-LOOP]: ...") and a JSON renderer for tooling.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace g5r::lint {

enum class Severity { kNote, kWarning, kError };

std::string_view severityName(Severity s);

/// Location inside a textual source (netlist files). line == 0 means "no
/// location" — kernel/SoC findings are positionless.
struct SourceLoc {
    std::string file;
    std::size_t line = 0;

    bool present() const { return line != 0 || !file.empty(); }
};

struct Diagnostic {
    std::string ruleId;    ///< Stable ID, e.g. "G5R-COMB-LOOP".
    Severity severity = Severity::kWarning;
    std::string message;   ///< One-line human explanation.
    SourceLoc loc;
    /// Cited nets/signals/ports, in rule-defined order (for G5R-COMB-LOOP:
    /// the full cycle path, first net repeated at the end).
    std::vector<std::string> nets;
};

class Report {
public:
    Diagnostic& add(std::string ruleId, Severity severity, std::string message,
                    SourceLoc loc = {}, std::vector<std::string> nets = {});

    /// Merge another report's diagnostics (in order) into this one.
    void merge(const Report& other);

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::kError); }
    std::size_t warnings() const { return count(Severity::kWarning); }
    bool hasErrors() const { return errors() > 0; }

    /// All diagnostics for one rule (testing convenience).
    std::vector<const Diagnostic*> byRule(std::string_view ruleId) const;

private:
    std::vector<Diagnostic> diags_;
};

/// Compiler-style rendering of one diagnostic (no trailing newline).
std::string formatDiagnostic(const Diagnostic& d);

/// Render every diagnostic, one per line, followed by a summary line when
/// @p summary is set ("3 errors, 1 warning generated.").
void emitText(const Report& report, std::ostream& os, bool summary = true);

/// Machine-readable rendering:
/// {"diagnostics":[{"rule":...,"severity":...,"message":...,"file":...,
///   "line":N,"nets":[...]}],"errors":N,"warnings":N}
void emitJson(const Report& report, std::ostream& os);

/// One registry row per stable rule ID (drives `g5r-lint --list-rules` and
/// keeps DESIGN.md honest about what exists).
struct RuleInfo {
    std::string_view id;
    Severity defaultSeverity;
    std::string_view summary;
};

/// Every registered rule, ordered by subsystem then ID.
const std::vector<RuleInfo>& ruleRegistry();

/// Registry row for @p id, or nullptr for unknown IDs.
const RuleInfo* findRule(std::string_view id);

}  // namespace g5r::lint
