#include "lint/kernel_lint.hh"

#include <map>
#include <string>
#include <vector>

namespace g5r::lint {
namespace {

using rtl::Module;
using rtl::RegBase;

struct Walk {
    /// Hierarchical path -> how many registers/modules claim it.
    std::map<std::string, unsigned> pathCount;
    std::vector<std::pair<std::string, const RegBase*>> regs;  ///< Path, reg.
    std::uint64_t maxLatches = 0;
};

void walk(const Module& module, const std::string& prefix, Walk& w) {
    const std::string path = prefix.empty() ? module.name() : prefix + "." + module.name();
    ++w.pathCount[path];
    for (const RegBase* reg : module.registers()) {
        const std::string regPath = path + "." + reg->name();
        ++w.pathCount[regPath];
        w.regs.emplace_back(regPath, reg);
        if (reg->latchCount() > w.maxLatches) w.maxLatches = reg->latchCount();
    }
    for (const Module* child : module.children()) walk(*child, path, w);
}

}  // namespace

Report run(const Module& root) {
    Walk w;
    walk(root, "", w);

    Report rep;
    for (const auto& [path, count] : w.pathCount) {
        if (count > 1) {
            rep.add("G5R-KRNL-DUP-SIGNAL", Severity::kError,
                    "hierarchical name '" + path + "' is declared " +
                        std::to_string(count) + " times; VCD traces of these "
                        "signals would be interleaved under one identifier",
                    {}, {path});
        }
    }
    for (const auto& [path, reg] : w.regs) {
        if (reg->width() == 0) {
            rep.add("G5R-KRNL-ZERO-WIDTH", Severity::kError,
                    "register '" + path + "' declares zero width", {}, {path});
        }
    }
    // Only meaningful once the design has ticked at least once: before any
    // latch, every register trivially has latchCount == 0.
    if (w.maxLatches > 0) {
        for (const auto& [path, reg] : w.regs) {
            if (reg->latchCount() == 0) {
                rep.add("G5R-KRNL-NEVER-LATCHED", Severity::kWarning,
                        "register '" + path + "' never latched although the "
                        "design has; is its module missing from the tick path?",
                        {}, {path});
            }
        }
    }
    return rep;
}

}  // namespace g5r::lint
