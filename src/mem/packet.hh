// Memory packets: the unit of communication between all SoC components.
//
// Follows gem5's request/response packet model. A requester builds a Packet,
// sends it through a timing port, and eventually receives the *same* packet
// back, converted into a response carrying data. Ownership moves with the
// packet: whoever holds the unique_ptr owns it; the port protocol only moves
// the pointer on *accepted* sends, so a rejected send leaves the packet with
// the sender (see port.hh).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/observer.hh"
#include "sim/packet_id.hh"
#include "sim/ticks.hh"

namespace g5r {

using Addr = std::uint64_t;

/// Identifies the original requester of a packet (assigned per port).
using RequestorId = std::uint16_t;
inline constexpr RequestorId kInvalidRequestor = 0xFFFF;

enum class MemCmd : std::uint8_t {
    kReadReq,
    kReadResp,
    kWriteReq,
    kWriteResp,
    kWritebackDirty,  ///< Cache eviction of dirty data; no response expected.
    kPrefetchReq,     ///< Read issued by a prefetcher; fills but does not retire.
};

const char* memCmdName(MemCmd cmd);

class Packet {
public:
    Packet(MemCmd cmd, Addr addr, unsigned size)
        : cmd_(cmd), addr_(addr), size_(size), id_(nextId()) {}

    ~Packet() {
        // Flow-tracked packets close their trace flow when the requester
        // finally destroys them. Flag check first: untracked packets (the
        // universe, when observability is off) pay only this one branch.
        if (flowTracked_) {
            if (SimObserver* obs = threadObserver()) obs->packetCompleted(id_);
        }
    }

    // --- identity ----------------------------------------------------------
    MemCmd cmd() const { return cmd_; }
    Addr addr() const { return addr_; }
    unsigned size() const { return size_; }
    std::uint64_t id() const { return id_; }

    RequestorId requestor() const { return requestor_; }
    void setRequestor(RequestorId r) { requestor_ = r; }

    /// Causal request tag (sim/observer.hh): the logical unit of work this
    /// packet belongs to, or 0 when untagged. Set by the component that
    /// builds the packet; carried, never interpreted, by the memory system.
    /// Deliberately excluded from recorder digests so .g5rec identity is
    /// unaffected by tracing.
    ReqId reqId() const { return reqId_; }
    void setReqId(ReqId id) { reqId_ = id; }

    // --- classification ----------------------------------------------------
    bool isRead() const { return cmd_ == MemCmd::kReadReq || cmd_ == MemCmd::kReadResp ||
                                 cmd_ == MemCmd::kPrefetchReq; }
    bool isWrite() const {
        return cmd_ == MemCmd::kWriteReq || cmd_ == MemCmd::kWriteResp ||
               cmd_ == MemCmd::kWritebackDirty;
    }
    bool isRequest() const { return !isResponse(); }
    bool isResponse() const { return cmd_ == MemCmd::kReadResp || cmd_ == MemCmd::kWriteResp; }
    bool needsResponse() const {
        return cmd_ == MemCmd::kReadReq || cmd_ == MemCmd::kWriteReq ||
               cmd_ == MemCmd::kPrefetchReq;
    }
    bool isEviction() const { return cmd_ == MemCmd::kWritebackDirty; }
    bool isPrefetch() const { return cmd_ == MemCmd::kPrefetchReq; }

    /// Convert this request in place into its response.
    void makeResponse() {
        switch (cmd_) {
        case MemCmd::kReadReq:
        case MemCmd::kPrefetchReq:
            cmd_ = MemCmd::kReadResp;
            break;
        case MemCmd::kWriteReq:
            cmd_ = MemCmd::kWriteResp;
            break;
        default:
            panic("makeResponse() on a non-request packet");
        }
    }

    // --- payload -----------------------------------------------------------
    bool hasData() const { return !data_.empty(); }

    /// Allocate (zeroed) payload storage of size() bytes.
    void allocate() { data_.assign(size_, 0); }

    std::uint8_t* data() {
        if (data_.empty()) allocate();
        return data_.data();
    }
    const std::uint8_t* constData() const {
        simAssert(!data_.empty(), "reading payload of an empty packet");
        return data_.data();
    }

    void setData(const std::uint8_t* src) {
        data_.assign(src, src + size_);
    }

    template <typename T>
    void set(T value) {
        simAssert(sizeof(T) <= size_, "payload type wider than packet");
        if (data_.empty()) allocate();
        std::memcpy(data_.data(), &value, sizeof(T));
    }

    template <typename T>
    T get() const {
        simAssert(sizeof(T) <= size_ && data_.size() >= sizeof(T), "payload read out of range");
        T value;
        std::memcpy(&value, data_.data(), sizeof(T));
        return value;
    }

    // --- misc --------------------------------------------------------------
    /// First tick the packet entered the memory system (set by the sender).
    Tick issueTick() const { return issueTick_; }
    void setIssueTick(Tick t) { issueTick_ = t; }

    /// True once an observer has seen this packet's first accepted timing
    /// send (set by RequestPort::sendTimingReq, cleared if that send was
    /// rejected). Gates the destructor's packetCompleted() report.
    bool flowTracked() const { return flowTracked_; }
    void setFlowTracked(bool tracked) { flowTracked_ = tracked; }

    std::string toString() const;

private:
    // IDs come from the thread's active per-Simulation counter (installed by
    // Simulation::run()), so a run's ID stream is deterministic no matter
    // how many simulations share the process. See sim/packet_id.hh.
    static std::uint64_t nextId() { return nextPacketId(); }

    MemCmd cmd_;
    Addr addr_;
    unsigned size_;
    std::uint64_t id_;
    RequestorId requestor_ = kInvalidRequestor;
    ReqId reqId_ = 0;
    bool flowTracked_ = false;
    Tick issueTick_ = 0;
    std::vector<std::uint8_t> data_;
};

using PacketPtr = std::unique_ptr<Packet>;

inline PacketPtr makeReadPacket(Addr addr, unsigned size) {
    return std::make_unique<Packet>(MemCmd::kReadReq, addr, size);
}

inline PacketPtr makeWritePacket(Addr addr, unsigned size) {
    auto pkt = std::make_unique<Packet>(MemCmd::kWriteReq, addr, size);
    pkt->allocate();
    return pkt;
}

}  // namespace g5r
