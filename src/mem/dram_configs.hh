// Table 1 main-memory technology presets.
//
//   DDR4-2400: 2 ranks/channel, 16 banks/rank, 8 KiB row buffer, 128-entry
//              write + 64-entry read queues, 18.75 GB/s peak per channel.
//   GDDR5:     quad-channel, 16 banks/channel, 2 KiB row buffer, same queues,
//              112 GB/s peak aggregate.
//   HBM:       8 channels, 16 banks/channel, 2 KiB row buffer, same queues,
//              128 GB/s peak aggregate.
//
// tBURST is derived from the peak per-channel bandwidth (64 B / tBURST);
// activation/precharge/CAS latencies use representative ~14 ns values.
#pragma once

#include <string>

#include "mem/dram.hh"

namespace g5r {

enum class MemTech {
    kIdeal,     ///< 1-cycle, unlimited bandwidth (the Figs. 6/7 baseline).
    kDdr4_1ch,
    kDdr4_2ch,
    kDdr4_4ch,
    kGddr5,
    kHbm,
};

inline const char* memTechName(MemTech tech) {
    switch (tech) {
    case MemTech::kIdeal: return "ideal";
    case MemTech::kDdr4_1ch: return "DDR4-1ch";
    case MemTech::kDdr4_2ch: return "DDR4-2ch";
    case MemTech::kDdr4_4ch: return "DDR4-4ch";
    case MemTech::kGddr5: return "GDDR5";
    case MemTech::kHbm: return "HBM";
    }
    return "unknown";
}

inline DramChannelParams ddr4ChannelParams() {
    DramChannelParams p;
    p.banks = 16;
    p.ranks = 2;
    p.rowBufferBytes = 8 * 1024;
    p.readQueueSize = 64;
    p.writeQueueSize = 128;
    p.tRCD = p.tCL = p.tRP = 14'160;  // ~DDR4-2400 CL17.
    p.tBURST = 3'413;                 // 64 B / 18.75 GB/s.
    return p;
}

inline DramChannelParams gddr5ChannelParams() {
    DramChannelParams p;
    p.banks = 16;
    p.ranks = 1;
    p.rowBufferBytes = 2 * 1024;
    p.readQueueSize = 64;
    p.writeQueueSize = 128;
    p.tRCD = p.tCL = p.tRP = 14'000;
    p.tBURST = 2'286;  // 64 B / 28 GB/s (112 GB/s over 4 channels).
    return p;
}

inline DramChannelParams hbmChannelParams() {
    DramChannelParams p;
    p.banks = 16;
    p.ranks = 1;
    p.rowBufferBytes = 2 * 1024;
    p.readQueueSize = 64;
    p.writeQueueSize = 128;
    p.tRCD = p.tCL = p.tRP = 14'000;
    p.tBURST = 4'000;  // 64 B / 16 GB/s per channel (128 GB/s over 8).
    return p;
}

/// DRAM parameters for a named technology over @p range. kIdeal has no DRAM
/// preset; use SimpleMemory instead (see soc/).
inline MultiChannelDram::Params dramParamsFor(MemTech tech, AddrRange range) {
    MultiChannelDram::Params p;
    p.range = range;
    switch (tech) {
    case MemTech::kDdr4_1ch:
        p.channels = 1;
        p.channel = ddr4ChannelParams();
        break;
    case MemTech::kDdr4_2ch:
        p.channels = 2;
        p.channel = ddr4ChannelParams();
        break;
    case MemTech::kDdr4_4ch:
        p.channels = 4;
        p.channel = ddr4ChannelParams();
        break;
    case MemTech::kGddr5:
        p.channels = 4;
        p.channel = gddr5ChannelParams();
        break;
    case MemTech::kHbm:
        p.channels = 8;
        p.channel = hbmChannelParams();
        break;
    case MemTech::kIdeal:
        panic("kIdeal is served by SimpleMemory, not MultiChannelDram");
    }
    return p;
}

}  // namespace g5r
