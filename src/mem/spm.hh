// Spm: a banked scratchpad memory exposed as a memory-mapped slave.
//
// The software-managed buffer of the DMA+SPM memory path (DESIGN.md §13): a
// DMA engine (mem/dma.hh) stages accelerator data here ahead of the compute
// stream, and the accelerator then sees SRAM-class latency instead of the
// full DRAM round trip. Presence is tracked per 64 B line:
//
//   * writes allocate: the covered lines become present and respond at the
//     banked SRAM latency (bytes never written read back as zero — the
//     scratchpad is private storage, not a cache of main memory),
//   * read hits (all covered lines present) respond at the banked latency,
//   * read misses fetch the missing lines through the mem-side port
//     (MSHR-style, one fill per line, coalesced across waiting reads), so
//     correctness never depends on the prefetch having run.
//
// Banking: line-interleaved ((addr >> 6) % banks), one access per bank per
// cycle; a busy bank delays the access and counts a conflict.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/backing_store.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

class Spm : public ClockedObject {
public:
    struct Params {
        AddrRange range;                  ///< Window the scratchpad mirrors.
        Tick clockPeriod = periodFromGHz(2);
        Cycles accessLatency = 2;         ///< SRAM array access, in cycles.
        unsigned banks = 8;               ///< Line-interleaved banks (power of two).
        unsigned maxPending = 64;         ///< Outstanding cpu-side transactions
                                          ///< before back-pressure.
        unsigned fillInflight = 16;       ///< Outstanding line fills downstream.
        std::uint64_t sizeBytes = 0;      ///< Capacity; 0 = unbounded. Overflow
                                          ///< panics (software-managed buffer:
                                          ///< spilling silently would be a bug).
    };

    Spm(Simulation& sim, std::string name, const Params& params);

    ResponsePort& cpuSidePort() { return cpuPort_; }
    RequestPort& memSidePort() { return memPort_; }
    const ResponsePort& cpuSidePort() const { return cpuPort_; }
    const RequestPort& memSidePort() const { return memPort_; }

    const AddrRange& range() const { return params_.range; }
    BackingStore& store() { return store_; }

    /// Lines currently resident (presence directory size).
    std::uint64_t residentLines() const { return present_.size(); }

private:
    class CpuPort final : public ResponsePort {
    public:
        CpuPort(std::string portName, Spm& owner)
            : ResponsePort(std::move(portName)), owner_(owner) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.handleFunctional(pkt); }
        void recvRespRetry() override {
            owner_.respBlocked_ = false;
            owner_.trySendResponses();
        }

    private:
        Spm& owner_;
    };

    class MemPort final : public RequestPort {
    public:
        MemPort(std::string portName, Spm& owner)
            : RequestPort(std::move(portName)), owner_(owner) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleFillResp(pkt); }
        void recvReqRetry() override {
            owner_.fillBlocked_ = false;
            owner_.sendFills();
        }

    private:
        Spm& owner_;
    };

    bool handleReq(PacketPtr& pkt);
    bool handleFillResp(PacketPtr& pkt);
    void handleFunctional(Packet& pkt);

    bool linePresent(Addr lineAddr) const { return present_.count(lineAddr) != 0; }
    void markPresent(Addr addr, unsigned size);

    /// Banked SRAM timing for an access at @p addr starting now: returns the
    /// tick the data is available, advancing the bank's busy cursor.
    Tick bankedReadyTick(Addr addr);

    void respond(PacketPtr pkt, Tick readyTick);
    void trySendResponses();
    void sendFills();
    void maybeSendReqRetry();

    Params params_;
    BackingStore store_;
    CpuPort cpuPort_;
    MemPort memPort_;
    CallbackEvent sendEvent_;

    /// Presence directory: line-aligned addresses resident in the array.
    std::unordered_set<Addr> present_;

    /// Per-bank busy cursor (one access per bank per cycle).
    std::vector<Tick> bankBusyUntil_;

    struct PendingResp {
        Tick readyTick;
        PacketPtr pkt;
    };
    std::deque<PendingResp> respQueue_;

    /// Reads waiting on line fills, keyed by an arrival counter.
    struct PendingRead {
        PacketPtr pkt;
        unsigned remainingFills = 0;
        Tick arrival = 0;  ///< Miss tick; start of the read's spmFill span.
    };
    std::map<std::uint64_t, PendingRead> pendingReads_;
    std::uint64_t nextReadKey_ = 0;

    /// Line fill book-keeping: line -> waiting read keys. fillQueue_ holds
    /// lines whose fill has not been issued downstream yet.
    std::unordered_map<Addr, std::vector<std::uint64_t>> mshrs_;
    std::deque<Addr> fillQueue_;
    unsigned fillsInflight_ = 0;
    bool fillBlocked_ = false;

    bool needReqRetry_ = false;
    bool respBlocked_ = false;

    stats::Scalar& readHits_;
    stats::Scalar& readMisses_;
    stats::Scalar& writes_;
    stats::Scalar& fills_;
    stats::Scalar& mshrJoins_;
    stats::Scalar& bankConflicts_;
    stats::Scalar& bytesRead_;
    stats::Scalar& bytesWritten_;
};

}  // namespace g5r
