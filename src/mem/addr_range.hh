// Half-open address ranges used for routing in crossbars and for memory
// capacity declarations.
#pragma once

#include <cstdint>

#include "mem/packet.hh"
#include "sim/logging.hh"

namespace g5r {

struct AddrRange {
    Addr start = 0;
    Addr end = 0;  ///< One past the last valid address.

    constexpr AddrRange() = default;
    constexpr AddrRange(Addr s, Addr e) : start(s), end(e) {}

    constexpr bool valid() const { return end > start; }
    constexpr Addr size() const { return end - start; }
    constexpr bool contains(Addr a) const { return a >= start && a < end; }
    constexpr bool contains(Addr a, unsigned bytes) const {
        return a >= start && a + bytes <= end;
    }
    constexpr bool overlaps(const AddrRange& o) const {
        return start < o.end && o.start < end;
    }
};

}  // namespace g5r
