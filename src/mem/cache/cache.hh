// Set-associative write-back cache with MSHRs.
//
// Models the timing behaviours Table 1 parameterises: lookup latency, MSHR
// occupancy limits (back-pressure when exhausted), dirty-victim writebacks,
// and an optional stride prefetcher (used at L2). Lines carry real data, so
// the hierarchy is functionally correct, not just a timing filter.
//
// Uncacheable requests (device registers, RTL-model CSB space) are forwarded
// downstream unmodified and matched back to their response by packet id.
#pragma once

#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/cache/stride_prefetcher.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/hw_events.hh"
#include "sim/simulation.hh"

namespace g5r {

struct CacheParams {
    unsigned sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned lineSize = 64;
    Cycles lookupLatency = 2;    ///< Tag+data access on a hit.
    Cycles responseLatency = 2;  ///< Fill-to-response path on a miss return.
    unsigned mshrs = 8;          ///< Outstanding distinct-line misses.
    Tick clockPeriod = periodFromGHz(2);
    bool enablePrefetcher = false;  ///< Stride prefetcher on the miss stream.
    unsigned prefetchDegree = 1;
    std::vector<AddrRange> uncacheable;  ///< Forwarded around the cache.
};

class Cache : public ClockedObject {
public:
    Cache(Simulation& sim, std::string name, const CacheParams& params);

    ResponsePort& cpuSidePort() { return cpuSide_; }
    RequestPort& memSidePort() { return memSide_; }

    // Introspection for tests.
    bool isCached(Addr addr) const;
    bool isDirty(Addr addr) const;
    unsigned mshrsInUse() const { return static_cast<unsigned>(mshrs_.size()); }

    /// Pulse a hardware-event line on every demand miss (PMU wiring).
    void setMissEvent(HwEventBus* bus, unsigned line) {
        missEventBus_ = bus;
        missEventLine_ = line;
    }

private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUsed = 0;
        std::vector<std::uint8_t> data;
    };

    /// One outstanding miss; demand packets pile up as targets.
    struct Mshr {
        Addr blockAddr = 0;
        bool prefetchOnly = true;  ///< No demand target yet (pure prefetch).
        std::vector<PacketPtr> targets;
    };

    class CpuSidePort final : public ResponsePort {
    public:
        CpuSidePort(std::string portName, Cache& owner)
            : ResponsePort(std::move(portName)), owner_(owner) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.access(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.functionalAccess(pkt); }
        void recvRespRetry() override { owner_.respBlocked_ = false; owner_.trySendResponses(); }

    private:
        Cache& owner_;
    };

    class MemSidePort final : public RequestPort {
    public:
        MemSidePort(std::string portName, Cache& owner)
            : RequestPort(std::move(portName)), owner_(owner) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleFill(pkt); }
        void recvReqRetry() override { owner_.memSideBlocked_ = false; owner_.trySendRequests(); }

    private:
        Cache& owner_;
    };

    Addr blockAlign(Addr a) const { return a & ~static_cast<Addr>(params_.lineSize - 1); }
    bool isUncacheable(Addr a) const;

    // Request path (from CPU side).
    bool access(PacketPtr& pkt);
    void handleHit(PacketPtr pkt, Line& line);
    bool handleMiss(PacketPtr& pkt);

    // Functional path: update/read cached data, else forward downstream.
    void functionalAccess(Packet& pkt);

    // Fill path (from memory side).
    bool handleFill(PacketPtr& pkt);
    Line& insertBlock(Addr blockAddr, const std::uint8_t* data);
    void satisfyTarget(Packet& target, Line& line);

    // Prefetch issue.
    void maybePrefetch(Addr missAddr, RequestorId requestor);

    // Outgoing queues.
    void pushRequest(PacketPtr pkt, Tick readyTick);
    void pushResponse(PacketPtr pkt, Tick readyTick);
    void trySendRequests();
    void trySendResponses();

    Line* findLine(Addr blockAddr);
    const Line* findLineConst(Addr blockAddr) const;

    CacheParams params_;
    unsigned numSets_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t lruCounter_ = 0;

    std::unordered_map<Addr, Mshr> mshrs_;
    std::unordered_set<std::uint64_t> uncacheableInFlight_;

    CpuSidePort cpuSide_;
    MemSidePort memSide_;

    struct TimedPkt {
        Tick readyTick;
        PacketPtr pkt;
    };
    std::deque<TimedPkt> reqQueue_;   ///< Toward memory (misses, writebacks, uncacheable).
    std::deque<TimedPkt> respQueue_;  ///< Toward the CPU.
    CallbackEvent reqEvent_;
    CallbackEvent respEvent_;
    bool memSideBlocked_ = false;
    bool respBlocked_ = false;
    bool needCpuRetry_ = false;

    StridePrefetcher prefetcher_;
    HwEventBus* missEventBus_ = nullptr;
    unsigned missEventLine_ = 0;

    stats::Scalar& hits_;
    stats::Scalar& misses_;
    stats::Scalar& mshrHits_;       ///< Misses merged into an existing MSHR.
    stats::Scalar& writebacks_;
    stats::Scalar& prefetchesIssued_;
    stats::Scalar& prefetchFills_;
    stats::Scalar& blockedOnMshrs_;
    stats::Scalar& demandAccesses_;
};

}  // namespace g5r
