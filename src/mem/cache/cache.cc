#include "mem/cache/cache.hh"

#include <algorithm>

namespace g5r {

Cache::Cache(Simulation& sim, std::string objName, const CacheParams& params)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      numSets_(params.sizeBytes / (params.lineSize * params.assoc)),
      cpuSide_(name() + ".cpu_side", *this),
      memSide_(name() + ".mem_side", *this),
      reqEvent_([this] { trySendRequests(); }, name() + ".reqEvent"),
      respEvent_([this] { trySendResponses(); }, name() + ".respEvent",
                 EventPriority::kResponse),
      prefetcher_(params.prefetchDegree, params.lineSize),
      hits_(stats_.scalar("hits", "demand hits")),
      misses_(stats_.scalar("misses", "demand misses sent downstream")),
      mshrHits_(stats_.scalar("mshrHits", "misses merged into in-flight MSHRs")),
      writebacks_(stats_.scalar("writebacks", "dirty victims written back")),
      prefetchesIssued_(stats_.scalar("prefetchesIssued", "prefetch requests sent")),
      prefetchFills_(stats_.scalar("prefetchFills", "fills with no demand target")),
      blockedOnMshrs_(stats_.scalar("blockedOnMshrs", "requests rejected, MSHRs full")),
      demandAccesses_(stats_.scalar("demandAccesses", "CPU-side requests observed")) {
    simAssert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
              "cache sets must be a non-zero power of two");
    sets_.resize(numSets_);
    for (auto& set : sets_) set.resize(params_.assoc);
}

bool Cache::isUncacheable(Addr a) const {
    return std::any_of(params_.uncacheable.begin(), params_.uncacheable.end(),
                       [a](const AddrRange& r) { return r.contains(a); });
}

Cache::Line* Cache::findLine(Addr blockAddr) {
    auto& set = sets_[(blockAddr / params_.lineSize) % numSets_];
    for (auto& line : set) {
        if (line.valid && line.tag == blockAddr) return &line;
    }
    return nullptr;
}

const Cache::Line* Cache::findLineConst(Addr blockAddr) const {
    return const_cast<Cache*>(this)->findLine(blockAddr);
}

bool Cache::isCached(Addr addr) const { return findLineConst(blockAlign(addr)) != nullptr; }

bool Cache::isDirty(Addr addr) const {
    const Line* line = findLineConst(blockAlign(addr));
    return line != nullptr && line->dirty;
}

// ------------------------------------------------------------ request path --

bool Cache::access(PacketPtr& pkt) {
    ++demandAccesses_;

    if (isUncacheable(pkt->addr())) {
        // Forward around the cache; the response is matched back by id.
        uncacheableInFlight_.insert(pkt->id());
        pushRequest(std::move(pkt), clockEdge(1));
        return true;
    }

    const Addr blockAddr = blockAlign(pkt->addr());
    simAssert(blockAlign(pkt->addr() + pkt->size() - 1) == blockAddr,
              "cache access crosses a line boundary");

    if (Line* line = findLine(blockAddr)) {
        ++hits_;
        const RequestorId requestor = pkt->requestor();
        handleHit(std::move(pkt), *line);
        // Train the prefetcher on hits too, so a stream it already covers
        // keeps extending instead of stalling until the next miss.
        maybePrefetch(blockAddr, requestor);
        return true;
    }
    return handleMiss(pkt);
}

void Cache::handleHit(PacketPtr pkt, Line& line) {
    line.lastUsed = ++lruCounter_;
    satisfyTarget(*pkt, line);
    if (!pkt->needsResponse()) {
        // A writeback from an upper cache hitting here is absorbed.
        return;
    }
    pkt->makeResponse();
    pushResponse(std::move(pkt), clockEdge(params_.lookupLatency));
}

bool Cache::handleMiss(PacketPtr& pkt) {
    const Addr blockAddr = blockAlign(pkt->addr());

    if (auto it = mshrs_.find(blockAddr); it != mshrs_.end()) {
        ++mshrHits_;
        if (!pkt->isPrefetch()) it->second.prefetchOnly = false;
        if (missEventBus_ != nullptr && !pkt->isPrefetch()) {
            missEventBus_->pulse(missEventLine_);
        }
        it->second.targets.push_back(std::move(pkt));
        return true;
    }

    if (mshrs_.size() >= params_.mshrs) {
        ++blockedOnMshrs_;
        needCpuRetry_ = true;
        return false;
    }

    if (missEventBus_ != nullptr && !pkt->isPrefetch()) {
        missEventBus_->pulse(missEventLine_);
    }

    ++misses_;
    const RequestorId requestor = pkt->requestor();
    Mshr& mshr = mshrs_[blockAddr];
    mshr.blockAddr = blockAddr;
    mshr.prefetchOnly = pkt->isPrefetch();
    mshr.targets.push_back(std::move(pkt));

    // Fetch the whole line (write-allocate for write misses).
    auto fetch = std::make_unique<Packet>(MemCmd::kReadReq, blockAddr, params_.lineSize);
    fetch->setRequestor(requestor);
    pushRequest(std::move(fetch), clockEdge(params_.lookupLatency));

    maybePrefetch(blockAddr, requestor);
    return true;
}

void Cache::maybePrefetch(Addr missAddr, RequestorId requestor) {
    if (!params_.enablePrefetcher) return;
    for (const Addr predicted : prefetcher_.notifyAccess(missAddr, requestor)) {
        const Addr blockAddr = blockAlign(predicted);
        if (findLine(blockAddr) != nullptr) continue;
        if (mshrs_.count(blockAddr) > 0) continue;
        if (mshrs_.size() >= params_.mshrs) break;  // Never starve demand misses.

        Mshr& mshr = mshrs_[blockAddr];
        mshr.blockAddr = blockAddr;
        mshr.prefetchOnly = true;

        auto fetch = std::make_unique<Packet>(MemCmd::kPrefetchReq, blockAddr, params_.lineSize);
        fetch->setRequestor(requestor);
        pushRequest(std::move(fetch), clockEdge(params_.lookupLatency));
        ++prefetchesIssued_;
    }
}

// --------------------------------------------------------------- fill path --

bool Cache::handleFill(PacketPtr& pkt) {
    if (auto it = uncacheableInFlight_.find(pkt->id()); it != uncacheableInFlight_.end()) {
        uncacheableInFlight_.erase(it);
        pushResponse(std::move(pkt), clockEdge(params_.responseLatency));
        return true;
    }

    if (pkt->cmd() == MemCmd::kWriteResp) {
        // Acknowledgement of a downstream write; nothing to do.
        pkt.reset();
        return true;
    }

    const Addr blockAddr = pkt->addr();
    auto it = mshrs_.find(blockAddr);
    simAssert(it != mshrs_.end(), "fill without a matching MSHR");
    Mshr mshr = std::move(it->second);
    mshrs_.erase(it);

    Line& line = insertBlock(blockAddr, pkt->constData());
    pkt.reset();

    if (mshr.prefetchOnly) ++prefetchFills_;
    for (PacketPtr& target : mshr.targets) {
        satisfyTarget(*target, line);
        if (!target->needsResponse()) continue;  // Absorbed writeback target.
        target->makeResponse();
        pushResponse(std::move(target), clockEdge(params_.responseLatency));
    }

    if (needCpuRetry_) {
        needCpuRetry_ = false;
        cpuSide_.sendReqRetry();
    }
    return true;
}

Cache::Line& Cache::insertBlock(Addr blockAddr, const std::uint8_t* data) {
    auto& set = sets_[(blockAddr / params_.lineSize) % numSets_];

    Line* victim = nullptr;
    for (auto& line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lastUsed < victim->lastUsed) victim = &line;
    }

    if (victim->valid && victim->dirty) {
        ++writebacks_;
        auto wb = std::make_unique<Packet>(MemCmd::kWritebackDirty, victim->tag,
                                           params_.lineSize);
        wb->setData(victim->data.data());
        pushRequest(std::move(wb), clockEdge(1));
    }

    victim->tag = blockAddr;
    victim->valid = true;
    victim->dirty = false;
    victim->lastUsed = ++lruCounter_;
    victim->data.assign(data, data + params_.lineSize);
    return *victim;
}

void Cache::satisfyTarget(Packet& target, Line& line) {
    const Addr offset = target.addr() - line.tag;
    if (target.isWrite()) {
        simAssert(target.hasData(), "write without payload");
        std::copy_n(target.constData(), target.size(), line.data.begin() + offset);
        line.dirty = true;
    } else {
        std::copy_n(line.data.begin() + offset, target.size(), target.data());
    }
}

void Cache::functionalAccess(Packet& pkt) {
    if (isUncacheable(pkt.addr())) {
        memSide_.sendFunctional(pkt);
        return;
    }
    if (Line* line = findLine(blockAlign(pkt.addr()))) {
        satisfyTarget(pkt, *line);
        return;
    }
    memSide_.sendFunctional(pkt);
}

// ------------------------------------------------------------ queued sends --

void Cache::pushRequest(PacketPtr pkt, Tick readyTick) {
    auto it = std::upper_bound(reqQueue_.begin(), reqQueue_.end(), readyTick,
                               [](Tick t, const TimedPkt& q) { return t < q.readyTick; });
    reqQueue_.insert(it, TimedPkt{readyTick, std::move(pkt)});
    if (!reqEvent_.scheduled()) {
        eventQueue().schedule(reqEvent_, std::max(curTick(), reqQueue_.front().readyTick));
    }
}

void Cache::pushResponse(PacketPtr pkt, Tick readyTick) {
    auto it = std::upper_bound(respQueue_.begin(), respQueue_.end(), readyTick,
                               [](Tick t, const TimedPkt& q) { return t < q.readyTick; });
    respQueue_.insert(it, TimedPkt{readyTick, std::move(pkt)});
    if (!respEvent_.scheduled()) {
        eventQueue().schedule(respEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

void Cache::trySendRequests() {
    while (!memSideBlocked_ && !reqQueue_.empty() && reqQueue_.front().readyTick <= curTick()) {
        PacketPtr& pkt = reqQueue_.front().pkt;
        if (!memSide_.sendTimingReq(pkt)) {
            memSideBlocked_ = true;
            return;
        }
        reqQueue_.pop_front();
    }
    if (!reqQueue_.empty() && !memSideBlocked_ && !reqEvent_.scheduled()) {
        eventQueue().schedule(reqEvent_, std::max(curTick(), reqQueue_.front().readyTick));
    }
}

void Cache::trySendResponses() {
    while (!respBlocked_ && !respQueue_.empty() && respQueue_.front().readyTick <= curTick()) {
        PacketPtr& pkt = respQueue_.front().pkt;
        if (!cpuSide_.sendTimingResp(pkt)) {
            respBlocked_ = true;
            return;
        }
        respQueue_.pop_front();
    }
    if (!respQueue_.empty() && !respBlocked_ && !respEvent_.scheduled()) {
        eventQueue().schedule(respEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

}  // namespace g5r
