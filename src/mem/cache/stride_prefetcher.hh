// Stride prefetcher operating on the demand-miss stream.
//
// Tracks the last miss address and detected stride per requestor; after two
// consecutive misses with the same stride it predicts the next @p degree
// blocks. This is the "stride prefetcher" attached to the private L2s in
// Table 1.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"

namespace g5r {

class StridePrefetcher {
public:
    StridePrefetcher(unsigned degree, unsigned lineSize)
        : degree_(degree), lineSize_(lineSize) {}

    /// Observe a demand access (hit or miss); returns blocks to prefetch.
    std::vector<Addr> notifyAccess(Addr blockAddr, RequestorId requestor) {
        std::vector<Addr> predictions;
        Entry& e = table_[requestor];
        const std::int64_t stride =
            static_cast<std::int64_t>(blockAddr) - static_cast<std::int64_t>(e.lastAddr);
        if (e.seen && stride != 0 && stride == e.stride) {
            if (e.confidence < kMaxConfidence) ++e.confidence;
        } else if (e.seen) {
            e.confidence = 0;
        }
        e.stride = stride;
        e.lastAddr = blockAddr;
        e.seen = true;

        if (e.confidence >= kThreshold) {
            predictions.reserve(degree_);
            std::int64_t next = static_cast<std::int64_t>(blockAddr);
            for (unsigned i = 0; i < degree_; ++i) {
                next += e.stride;
                if (next < 0) break;
                predictions.push_back(static_cast<Addr>(next));
            }
        }
        return predictions;
    }

private:
    static constexpr unsigned kThreshold = 2;
    static constexpr unsigned kMaxConfidence = 4;

    struct Entry {
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        bool seen = false;
    };

    unsigned degree_;
    unsigned lineSize_;
    std::unordered_map<RequestorId, Entry> table_;
};

}  // namespace g5r
