#include "mem/dram.hh"

#include <algorithm>

namespace g5r {

// ---------------------------------------------------------------- channel --

DramChannel::DramChannel(Simulation& sim, std::string objName,
                         const DramChannelParams& params, MultiChannelDram& parent,
                         unsigned channelId)
    : ClockedObject(sim, std::move(objName), parent.clockPeriod()),
      params_(params),
      parent_(parent),
      channelId_(channelId),
      totalBanks_(params.banks * params.ranks),
      linesPerRow_(params.rowBufferBytes / 64),
      banks_(totalBanks_),
      nextReqEvent_([this] { processNextRequest(); }, name() + ".nextReq"),
      rowHits_(stats_.scalar("rowHits", "column accesses hitting an open row")),
      rowMisses_(stats_.scalar("rowMisses", "column accesses needing activate")),
      readBursts_(stats_.scalar("readBursts", "read bursts serviced")),
      writeBursts_(stats_.scalar("writeBursts", "write bursts serviced")),
      busTurnarounds_(stats_.scalar("busTurnarounds", "read<->write bus switches")),
      bytesTransferred_(stats_.scalar("bytesTransferred", "data-bus bytes moved")),
      starvationBreaks_(stats_.scalar("starvationBreaks",
                                      "FR-FCFS picks forced to the oldest request")),
      readQueueLatency_(stats_.distribution("readLatency", "enqueue-to-data ticks")) {
    simAssert(linesPerRow_ > 0, "row buffer smaller than a cache line");
}

void DramChannel::decode(Addr addr, unsigned& bank, Addr& row) const {
    const Addr lineIdx = (addr >> 6) / parent_.decodeChannels();
    bank = static_cast<unsigned>((lineIdx / linesPerRow_) % totalBanks_);
    row = lineIdx / (linesPerRow_ * totalBanks_);
}

bool DramChannel::canAccept(const Packet& pkt) const {
    if (pkt.isWrite()) return writeQueue_.size() < params_.writeQueueSize;
    return readQueue_.size() < params_.readQueueSize;
}

void DramChannel::enqueue(PacketPtr pkt) {
    unsigned bank = 0;
    Addr row = 0;
    decode(pkt->addr(), bank, row);

    if (pkt->isWrite()) {
        const ReqId reqId = pkt->reqId();
        // Commit data immediately; the queue entry models timing only. Reads
        // enqueued later observe the committed data (conservative forwarding).
        parent_.store().access(*pkt);
        if (pkt->needsResponse()) {
            pkt->makeResponse();
            parent_.respond(std::move(pkt), curTick() + params_.frontendLatency);
        }
        // The write is acked up front, so its observable dramService window
        // is just the frontend pipeline; the queued burst happens later,
        // off the request's critical path.
        if (reqId != 0) {
            if (SimObserver* obs = threadObserver()) {
                obs->requestSpan(reqId, ReqStage::kDramService, curTick(),
                                 curTick() + params_.frontendLatency);
            }
        }
        writeQueue_.push_back(QueuedReq{nullptr, row, bank, curTick(), reqId});
    } else {
        const ReqId reqId = pkt->reqId();
        readQueue_.push_back(QueuedReq{std::move(pkt), row, bank, curTick(), reqId});
    }

    if (!nextReqEvent_.scheduled()) {
        eventQueue().schedule(nextReqEvent_, std::max(curTick(), busFreeTick_));
    }
}

std::size_t DramChannel::pickFrFcfs(const std::deque<QueuedReq>& queue,
                                    unsigned& headBypasses) {
    const auto pick = [&]() -> std::size_t {
        // Starvation cap: once the head has been bypassed maxStarvation times
        // in a row, age wins over row locality.
        if (headBypasses >= params_.maxStarvation) {
            ++starvationBreaks_;
            return 0;
        }
        // First-ready: oldest request whose bank has the right row open.
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Bank& bank = banks_[queue[i].bank];
            if (bank.openRow == queue[i].row && bank.actReadyTick <= curTick()) return i;
        }
        // Second chance: any open-row match even if activation is still pending.
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (banks_[queue[i].bank].openRow == queue[i].row) return i;
        }
        return 0;  // FCFS fallback: the oldest request.
    };
    const std::size_t idx = pick();
    headBypasses = (idx == 0) ? 0 : headBypasses + 1;
    return idx;
}

Tick DramChannel::service(QueuedReq& req) {
    Bank& bank = banks_[req.bank];
    // Commands for a queued request can issue as soon as the request exists;
    // only the data burst serialises on the bus. This models the command-
    // lookahead a real controller performs while the bus is busy.
    const Tick available = req.enqueueTick;

    if (bank.openRow != req.row) {
        ++rowMisses_;
        // Precharge cannot start before the bank's previous burst completes.
        const Tick start = std::max(available, bank.lastBurstEnd);
        const Tick prechargeDone = (bank.openRow == Bank::kNoRow) ? start : start + params_.tRP;
        bank.actReadyTick = prechargeDone + params_.tRCD;
        bank.openRow = req.row;
    } else {
        ++rowHits_;
    }

    // Column commands pipeline: CAS latency overlaps with earlier bursts, so
    // a stream of row hits is limited only by the data bus (tBURST).
    const Tick colCmd = std::max(available, bank.actReadyTick);
    Tick burstStart = std::max(colCmd + params_.tCL, busFreeTick_);
    const bool isWrite = (req.pkt == nullptr);
    if (isWrite != lastWasWrite_) {
        burstStart += params_.tSwitch;
        ++busTurnarounds_;
        lastWasWrite_ = isWrite;
    }

    busFreeTick_ = burstStart + params_.tBURST;
    bank.lastBurstEnd = busFreeTick_;
    bytesTransferred_ += 64;
    return busFreeTick_;
}

void DramChannel::processNextRequest() {
    if (readQueue_.empty() && writeQueue_.empty()) return;

    // Mode selection: drain writes in bursts, otherwise serve reads; serve
    // writes opportunistically when no reads are waiting.
    const auto writeFill = static_cast<double>(writeQueue_.size());
    const double wqSize = params_.writeQueueSize;
    if (drainingWrites_) {
        const bool drainedEnough = writeFill <= params_.writeLowWatermark * wqSize &&
                                   writesThisDrain_ >= params_.minWritesPerSwitch;
        if (writeQueue_.empty() || (drainedEnough && !readQueue_.empty())) {
            drainingWrites_ = false;
            writesThisDrain_ = 0;
        }
    } else if (writeFill >= params_.writeHighWatermark * wqSize) {
        drainingWrites_ = true;
        writesThisDrain_ = 0;
    }

    const bool doWrite = (drainingWrites_ && !writeQueue_.empty()) ||
                         (readQueue_.empty() && !writeQueue_.empty());
    auto& queue = doWrite ? writeQueue_ : readQueue_;

    const std::size_t idx =
        pickFrFcfs(queue, doWrite ? writeHeadBypasses_ : readHeadBypasses_);
    QueuedReq req = std::move(queue[idx]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(idx));

    const Tick done = service(req);
    if (doWrite) {
        ++writesThisDrain_;
        ++writeBursts_;
    } else {
        ++readBursts_;
        readQueueLatency_.sample(static_cast<double>(done - req.enqueueTick));
        // The read's dramService window runs from arrival in the channel
        // queue to the tick its response leaves the controller pipeline.
        if (req.reqId != 0) {
            if (SimObserver* obs = threadObserver()) {
                obs->requestSpan(req.reqId, ReqStage::kDramService, req.enqueueTick,
                                 done + params_.frontendLatency + params_.backendLatency);
            }
        }
        parent_.store().access(*req.pkt);
        req.pkt->makeResponse();
        parent_.respond(std::move(req.pkt),
                        done + params_.frontendLatency + params_.backendLatency);
    }

    // The retry below can re-enter enqueue() and schedule the event already.
    parent_.channelSpaceFreed(channelId_, doWrite);
    if ((!readQueue_.empty() || !writeQueue_.empty()) && !nextReqEvent_.scheduled()) {
        eventQueue().schedule(nextReqEvent_, std::max(curTick(), busFreeTick_));
    }
}

// ------------------------------------------------------------------ front --

MultiChannelDram::MultiChannelDram(Simulation& sim, std::string objName,
                                   const Params& params, BackingStore& backing)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      store_(backing),
      port_(name() + ".port", *this),
      sendEvent_([this] { trySendResponses(); }, name() + ".sendEvent",
                 EventPriority::kResponse),
      numReads_(stats_.scalar("numReads", "read requests accepted")),
      numWrites_(stats_.scalar("numWrites", "write requests accepted")),
      bytesRead_(stats_.scalar("bytesRead", "bytes returned by reads")),
      bytesWritten_(stats_.scalar("bytesWritten", "bytes consumed by writes")),
      rejectedRequests_(stats_.scalar("rejectedRequests", "requests back-pressured")) {
    simAssert(params_.channels > 0, "DRAM needs at least one channel");
    channels_.reserve(params_.channels);
    for (unsigned i = 0; i < params_.channels; ++i) {
        channels_.push_back(std::make_unique<DramChannel>(
            sim, name() + ".ch" + std::to_string(i), params_.channel, *this, i));
    }
}

double MultiChannelDram::peakBandwidth() const {
    const double burstSeconds = ticksToSeconds(params_.channel.tBURST);
    return params_.channels * 64.0 / burstSeconds;
}

unsigned MultiChannelDram::channelOf(Addr addr) const {
    return static_cast<unsigned>((addr >> 6) % params_.channels);
}

bool MultiChannelDram::handleReq(PacketPtr& pkt) {
    simAssert(params_.range.contains(pkt->addr()), "DRAM request out of range");
    const unsigned channelId = channelOf(pkt->addr());
    DramChannel& channel = *channels_[channelId];
    if (!channel.canAccept(*pkt)) {
        needReqRetry_ = true;
        retryChannel_ = channelId;
        retryIsWrite_ = pkt->isWrite();
        ++rejectedRequests_;
        return false;
    }
    if (pkt->isRead()) {
        ++numReads_;
        bytesRead_ += pkt->size();
    } else {
        ++numWrites_;
        bytesWritten_ += pkt->size();
    }
    channel.enqueue(std::move(pkt));
    return true;
}

void MultiChannelDram::respond(PacketPtr pkt, Tick readyTick) {
    // Insert keeping the queue sorted by ready time (channels finish
    // out of order relative to each other).
    auto it = std::upper_bound(
        respQueue_.begin(), respQueue_.end(), readyTick,
        [](Tick t, const PendingResp& r) { return t < r.readyTick; });
    respQueue_.insert(it, PendingResp{readyTick, std::move(pkt)});
    if (!sendEvent_.scheduled()) {
        eventQueue().schedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    } else if (respQueue_.front().readyTick < sendEvent_.when()) {
        eventQueue().reschedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

void MultiChannelDram::channelSpaceFreed(unsigned channelId, bool wasWrite) {
    // Retry only when the queue that rejected the packet is the one that
    // freed: a retry on any other channel's progress would bounce straight
    // back off the still-full queue (and repeat every service — a storm).
    if (needReqRetry_ && channelId == retryChannel_ && wasWrite == retryIsWrite_) {
        needReqRetry_ = false;
        port_.sendReqRetry();
    }
}

void MultiChannelDram::trySendResponses() {
    while (!respBlocked_ && !respQueue_.empty() && respQueue_.front().readyTick <= curTick()) {
        PacketPtr& pkt = respQueue_.front().pkt;
        if (!port_.sendTimingResp(pkt)) {
            respBlocked_ = true;
            return;
        }
        respQueue_.pop_front();
    }
    if (!respQueue_.empty() && !respBlocked_ && !sendEvent_.scheduled()) {
        eventQueue().schedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

}  // namespace g5r
