// Timing ports: the gem5-style point-to-point request/response protocol.
//
// A RequestPort (CPU/requester side) binds to exactly one ResponsePort
// (memory/responder side). Communication is by moving Packet ownership:
//
//   * sendTimingReq(pkt): the requester offers a request. If the responder
//     accepts (returns true) the unique_ptr is moved from; if it rejects,
//     the pointer is untouched and the responder *must* later call
//     sendReqRetry() exactly once, at which point the requester may retry.
//   * sendTimingResp(pkt): symmetric, responder -> requester, with
//     sendRespRetry() as the unblocking notification.
//   * sendFunctional(pkt): synchronous, zero-time access used for loading
//     program images and debug inspection; always succeeds.
//
// Ports are plain members of SimObjects; the virtual recv* hooks are
// implemented by small port subclasses that forward into their owner.
#pragma once

#include <string>

#include "mem/packet.hh"
#include "sim/logging.hh"
#include "sim/observer.hh"

namespace g5r {

class ResponsePort;

class RequestPort {
public:
    explicit RequestPort(std::string name) : name_(std::move(name)) {}
    RequestPort(const RequestPort&) = delete;
    RequestPort& operator=(const RequestPort&) = delete;
    virtual ~RequestPort() = default;

    const std::string& name() const { return name_; }
    bool isBound() const { return peer_ != nullptr; }
    void bind(ResponsePort& peer);

    /// Offer a request to the peer. On acceptance @p pkt is moved from;
    /// on rejection it is untouched and a recvReqRetry() will follow.
    bool sendTimingReq(PacketPtr& pkt);

    /// Unblock the peer after this side rejected a response.
    void sendRespRetry();

    /// Synchronous debug/load access; never blocks.
    void sendFunctional(Packet& pkt);

    /// Incoming response. Return false to reject; @p pkt must then be left
    /// untouched and this side must later call sendRespRetry().
    virtual bool recvTimingResp(PacketPtr& pkt) = 0;

    /// The peer can now accept a previously-rejected request.
    virtual void recvReqRetry() = 0;

private:
    friend class ResponsePort;
    std::string name_;
    ResponsePort* peer_ = nullptr;
};

class ResponsePort {
public:
    explicit ResponsePort(std::string name) : name_(std::move(name)) {}
    ResponsePort(const ResponsePort&) = delete;
    ResponsePort& operator=(const ResponsePort&) = delete;
    virtual ~ResponsePort() = default;

    const std::string& name() const { return name_; }
    bool isBound() const { return peer_ != nullptr; }

    /// Offer a response to the peer. On acceptance @p pkt is moved from;
    /// on rejection it is untouched and a recvRespRetry() will follow.
    bool sendTimingResp(PacketPtr& pkt);

    /// Unblock the peer after this side rejected a request.
    void sendReqRetry();

    /// Incoming request. Return false to reject; @p pkt must then be left
    /// untouched and this side must later call sendReqRetry().
    virtual bool recvTimingReq(PacketPtr& pkt) = 0;

    /// Synchronous access for loads/debug; must always complete.
    virtual void recvFunctional(Packet& pkt) = 0;

    /// The peer can now accept a previously-rejected response.
    virtual void recvRespRetry() = 0;

private:
    friend class RequestPort;
    std::string name_;
    RequestPort* peer_ = nullptr;
};

// ---------------------------------------------------------------------------

inline void RequestPort::bind(ResponsePort& peer) {
    simAssert(peer_ == nullptr && peer.peer_ == nullptr, "port double-bind");
    peer_ = &peer;
    peer.peer_ = this;
}

inline bool RequestPort::sendTimingReq(PacketPtr& pkt) {
    simAssert(peer_ != nullptr, "sendTimingReq on unbound port");
    simAssert(pkt != nullptr && pkt->isRequest(), "sendTimingReq needs a request packet");
    SimObserver* obs = threadObserver();
    if (obs == nullptr) return peer_->recvTimingReq(pkt);

    // Capture identity before the call: on acceptance the peer takes
    // ownership and pkt is moved-from. A rejected send leaves the packet
    // untouched (port contract), so un-marking on rejection is safe.
    const std::uint64_t id = pkt->id();
    const std::uint64_t addr = pkt->addr();
    const unsigned size = pkt->size();
    const bool isRead = pkt->isRead();
    const bool tracked = pkt->flowTracked();
    const bool first = !tracked && pkt->needsResponse();
    if (first) pkt->setFlowTracked(true);
    const bool accepted = peer_->recvTimingReq(pkt);
    if (accepted) {
        if (first) {
            obs->packetIssued(id, addr, size, isRead);
        } else if (tracked) {
            obs->packetForwarded(id);
        }
    } else if (first) {
        pkt->setFlowTracked(false);
    }
    return accepted;
}

inline void RequestPort::sendRespRetry() {
    simAssert(peer_ != nullptr, "sendRespRetry on unbound port");
    peer_->recvRespRetry();
}

inline void RequestPort::sendFunctional(Packet& pkt) {
    simAssert(peer_ != nullptr, "sendFunctional on unbound port");
    peer_->recvFunctional(pkt);
}

inline bool ResponsePort::sendTimingResp(PacketPtr& pkt) {
    simAssert(peer_ != nullptr, "sendTimingResp on unbound port");
    simAssert(pkt != nullptr && pkt->isResponse(), "sendTimingResp needs a response packet");
    SimObserver* obs = threadObserver();
    if (obs == nullptr) return peer_->recvTimingResp(pkt);

    const std::uint64_t id = pkt->id();
    const bool tracked = pkt->flowTracked();
    const bool accepted = peer_->recvTimingResp(pkt);
    if (accepted && tracked) obs->packetResponded(id);
    return accepted;
}

inline void ResponsePort::sendReqRetry() {
    simAssert(peer_ != nullptr, "sendReqRetry on unbound port");
    peer_->recvReqRetry();
}

}  // namespace g5r
