#include "mem/dma.hh"

#include <algorithm>

namespace g5r {

DmaEngine::DmaEngine(Simulation& sim, std::string objName, const Params& params)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      memPort_(name() + ".mem_side", *this, /*isMem=*/true),
      spmPort_(name() + ".spm_side", *this, /*isMem=*/false),
      processEvent_([this] { process(); }, name() + ".process"),
      descriptors_(stats_.scalar("descriptors", "copy descriptors completed")),
      bytesCopied_(stats_.scalar("bytesCopied", "payload bytes copied")),
      descriptorLatency_(
          stats_.histogram("descriptorLatency", "enqueue-to-complete ticks")),
      inflight_(stats_.distribution("inflight", "outstanding line requests")) {
    simAssert(params_.maxInflight > 0, "DMA needs at least one in-flight request");
    simAssert(params_.lineBytes > 0 && (params_.lineBytes & (params_.lineBytes - 1)) == 0,
              "DMA line size must be a power of two");
}

void DmaEngine::enqueue(Descriptor desc) {
    // Every descriptor is a traceable unit of work. The ID is allocated
    // unconditionally (the counter must advance identically traced or not);
    // the begin report costs one branch when no observer is attached.
    desc.id = sim_.allocRequestId();
    if (SimObserver* obs = threadObserver()) {
        obs->requestBegin(desc.id, desc.parent,
                          desc.dir == Direction::kMemToSpm ? "dmaPrefetch" : "dmaDrain",
                          curTick());
    }
    queue_.push_back(std::move(desc));
    if (!processEvent_.scheduled()) eventQueue().schedule(processEvent_, clockEdge());
}

void DmaEngine::process() {
    if (active_ == nullptr) {
        if (queue_.empty()) return;
        active_ = std::make_unique<Descriptor>(std::move(queue_.front()));
        queue_.pop_front();
        activeStart_ = curTick();
        cursor_ = 0;
        if (active_->bytes == 0) {
            completeActive();
            return;
        }
    }
    issueReads();
}

void DmaEngine::issueReads() {
    const Addr line = params_.lineBytes;
    Lane& src = laneOf(srcIsMem());
    while (cursor_ < active_->bytes &&
           outstandingReads_ + outstandingWrites_ < params_.maxInflight) {
        // Never cross a line boundary on either side of the copy.
        const Addr srcAddr = active_->src + cursor_;
        const Addr dstAddr = active_->dst + cursor_;
        const std::uint64_t chunk =
            std::min({active_->bytes - cursor_, line - srcAddr % line,
                      line - dstAddr % line});
        PacketPtr read = makeReadPacket(srcAddr, static_cast<unsigned>(chunk));
        read->setReqId(active_->id);
        src.queue.push_back(std::move(read));
        cursor_ += chunk;
        ++outstandingReads_;
        inflight_.sample(static_cast<double>(outstandingReads_ + outstandingWrites_));
    }
    sendQueued(srcIsMem());
}

void DmaEngine::sendQueued(bool isMem) {
    Lane& lane = laneOf(isMem);
    RequestPort& port = isMem ? static_cast<RequestPort&>(memPort_)
                              : static_cast<RequestPort&>(spmPort_);
    while (!lane.blocked && !lane.queue.empty()) {
        PacketPtr& pkt = lane.queue.front();
        if (!port.sendTimingReq(pkt)) {
            lane.blocked = true;
            return;
        }
        lane.queue.pop_front();
    }
}

void DmaEngine::portUnblocked(bool isMem) {
    laneOf(isMem).blocked = false;
    sendQueued(isMem);
}

bool DmaEngine::handleResp(PacketPtr& pkt) {
    simAssert(active_ != nullptr, "DMA response with no active descriptor");
    if (pkt->isRead()) {
        // A source read came back: turn it into a destination write.
        simAssert(outstandingReads_ > 0, "DMA read response underflow");
        --outstandingReads_;
        const Addr dstAddr = active_->dst + (pkt->addr() - active_->src);
        auto write = makeWritePacket(dstAddr, pkt->size());
        write->setData(pkt->constData());
        write->setReqId(active_->id);
        ++outstandingWrites_;
        laneOf(!srcIsMem()).queue.push_back(std::move(write));
        pkt.reset();
        sendQueued(!srcIsMem());
        // A request slot freed up; keep the read stream moving.
        if (cursor_ < active_->bytes && !processEvent_.scheduled()) {
            eventQueue().schedule(processEvent_, clockEdge());
        }
    } else {
        simAssert(outstandingWrites_ > 0, "DMA write response underflow");
        --outstandingWrites_;
        pkt.reset();
        if (cursor_ == active_->bytes && outstandingReads_ == 0 &&
            outstandingWrites_ == 0) {
            completeActive();
        } else if (cursor_ < active_->bytes && !processEvent_.scheduled()) {
            eventQueue().schedule(processEvent_, clockEdge());
        }
    }
    return true;
}

void DmaEngine::completeActive() {
    ++descriptors_;
    bytesCopied_ += static_cast<double>(active_->bytes);
    descriptorLatency_.sample(static_cast<double>(curTick() - activeStart_));
    if (SimObserver* obs = threadObserver()) {
        // A drain descriptor's active window is the job's "drain" stage;
        // a prefetch window is staging work.
        const ReqStage stage = active_->dir == Direction::kSpmToMem ? ReqStage::kDrain
                                                                    : ReqStage::kDmaStage;
        obs->requestSpan(active_->id, stage, activeStart_, curTick());
        obs->requestEnd(active_->id, curTick());
    }
    // Move the callback out first: it may enqueue further descriptors (e.g.
    // a drain chained onto a prefetch) or inspect idle().
    const std::function<void()> done = std::move(active_->onComplete);
    active_.reset();
    if (!queue_.empty() && !processEvent_.scheduled()) {
        eventQueue().schedule(processEvent_, clockEdge());
    }
    if (done) done();
}

}  // namespace g5r
