#include "mem/xbar.hh"

#include <algorithm>

namespace g5r {

// ------------------------------------------------------------------- ports --

class Xbar::UpPort final : public ResponsePort {
public:
    UpPort(std::string portName, Xbar& owner, unsigned idx)
        : ResponsePort(std::move(portName)), owner_(owner), idx_(idx) {}

    bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(idx_, pkt); }
    void recvFunctional(Packet& pkt) override { owner_.handleFunctional(pkt); }
    void recvRespRetry() override { owner_.deliverResp(idx_); }

private:
    Xbar& owner_;
    unsigned idx_;
};

class Xbar::DownPort final : public RequestPort {
public:
    DownPort(std::string portName, Xbar& owner, unsigned idx)
        : RequestPort(std::move(portName)), owner_(owner), idx_(idx) {}

    bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleResp(idx_, pkt); }
    void recvReqRetry() override { owner_.deliverReq(idx_); }

private:
    Xbar& owner_;
    unsigned idx_;
};

// -------------------------------------------------------------------- xbar --

Xbar::Xbar(Simulation& sim, std::string objName, const Params& params)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      reqsRouted_(stats_.scalar("reqsRouted", "requests switched downstream")),
      respsRouted_(stats_.scalar("respsRouted", "responses switched upstream")),
      layerConflicts_(stats_.scalar("layerConflicts", "sends rejected, layer busy")),
      bytesRouted_(stats_.scalar("bytesRouted", "payload bytes through the switch")) {}

Xbar::~Xbar() = default;

ResponsePort& Xbar::addCpuSidePort(const std::string& suffix) {
    const unsigned idx = static_cast<unsigned>(upPorts_.size());
    upPorts_.push_back(std::make_unique<UpPort>(name() + ".cpu_side." + suffix, *this, idx));
    latency_.push_back(&stats_.distribution(
        "latency." + suffix, "round-trip ticks, request accept to response arrival"));
    latencyHist_.push_back(&stats_.histogram(
        "latencyHist." + suffix, "round-trip ticks histogram (quantiles)"));

    respLayers_.emplace_back();
    Layer& layer = respLayers_.back();
    layer.deliverEvent = std::make_unique<CallbackEvent>(
        [this, idx] { deliverResp(idx); }, name() + ".respDeliver." + suffix,
        EventPriority::kResponse);
    layer.freeEvent = std::make_unique<CallbackEvent>(
        [this, idx] { finishRespLayer(idx); }, name() + ".respFree." + suffix,
        EventPriority::kResponse);
    return *upPorts_.back();
}

RequestPort& Xbar::addMemSidePort(const std::string& suffix, const RouteSpec& route) {
    const unsigned idx = static_cast<unsigned>(downPorts_.size());
    downPorts_.push_back(
        std::make_unique<DownPort>(name() + ".mem_side." + suffix, *this, idx));
    routes_.push_back(route);

    reqLayers_.emplace_back();
    Layer& layer = reqLayers_.back();
    layer.deliverEvent = std::make_unique<CallbackEvent>(
        [this, idx] { deliverReq(idx); }, name() + ".reqDeliver." + suffix);
    layer.freeEvent = std::make_unique<CallbackEvent>(
        [this, idx] { finishReqLayer(idx); }, name() + ".reqFree." + suffix);
    return *downPorts_.back();
}

const ResponsePort& Xbar::cpuSidePort(unsigned idx) const { return *upPorts_.at(idx); }

const RequestPort& Xbar::memSidePort(unsigned idx) const { return *downPorts_.at(idx); }

unsigned Xbar::route(Addr addr) const {
    for (unsigned i = 0; i < routes_.size(); ++i) {
        if (routes_[i].matches(addr)) return i;
    }
    panicStream(strCat("xbar ", name(), ": no route for address 0x", std::hex, addr));
}

void Xbar::acceptIntoLayer(Layer& layer, PacketPtr& pkt, unsigned srcIdx,
                           CallbackEvent& deliverEvent) {
    // Only payload occupies the datapath: write requests and read responses
    // carry data; read requests and write acks are a single header beat.
    const bool carriesData = (pkt->isWrite() && pkt->isRequest()) ||
                             (pkt->isRead() && pkt->isResponse());
    const unsigned payload = carriesData ? pkt->size() : 0;
    const Cycles beats =
        std::max<Cycles>(1, (payload + params_.widthBytes - 1) / params_.widthBytes);
    layer.busy = true;
    layer.waitingPeer = false;
    layer.srcIdx = srcIdx;
    layer.acceptTick = curTick();
    // Header latency is pipelined; the layer is occupied for the beats only.
    layer.freeTick = clockEdge(beats);
    bytesRouted_ += payload;
    layer.pkt = std::move(pkt);
    eventQueue().schedule(deliverEvent, clockEdge(params_.forwardLatency));
}

// ----------------------------------------------------------- request path --

bool Xbar::handleReq(unsigned srcUp, PacketPtr& pkt) {
    const unsigned dst = route(pkt->addr());
    Layer& layer = reqLayers_[dst];
    if (layer.busy) {
        ++layerConflicts_;
        if (std::find(layer.retryList.begin(), layer.retryList.end(), srcUp) ==
            layer.retryList.end()) {
            layer.retryList.push_back(srcUp);
        }
        return false;
    }
    ++reqsRouted_;
    acceptIntoLayer(layer, pkt, srcUp, *layer.deliverEvent);
    return true;
}

void Xbar::deliverReq(unsigned dstDown) {
    Layer& layer = reqLayers_[dstDown];
    if (!layer.busy || layer.pkt == nullptr) return;

    const bool wantsRoute = layer.pkt->needsResponse();
    const std::uint64_t id = layer.pkt->id();
    const ReqId reqId = layer.pkt->reqId();
    const Tick acceptTick = layer.acceptTick;
    if (!downPorts_[dstDown]->sendTimingReq(layer.pkt)) {
        layer.waitingPeer = true;  // Peer will recvReqRetry -> deliverReq again.
        return;
    }
    if (wantsRoute) respRoute_[id] = RouteInfo{layer.srcIdx, layer.acceptTick};
    // Ticks between layer acceptance and the downstream peer taking the
    // packet are crossbar queueing, blamed on the packet's request.
    if (reqId != 0 && curTick() > acceptTick) {
        if (SimObserver* obs = threadObserver()) {
            obs->requestSpan(reqId, ReqStage::kXbarQueue, acceptTick, curTick());
        }
    }

    if (layer.freeTick <= curTick()) {
        finishReqLayer(dstDown);
    } else if (!layer.freeEvent->scheduled()) {
        eventQueue().schedule(*layer.freeEvent, layer.freeTick);
    }
}

void Xbar::finishReqLayer(unsigned dstDown) {
    Layer& layer = reqLayers_[dstDown];
    layer.busy = false;
    layer.waitingPeer = false;
    std::vector<unsigned> waiting;
    waiting.swap(layer.retryList);
    for (const unsigned up : waiting) upPorts_[up]->sendReqRetry();
}

// ---------------------------------------------------------- response path --

bool Xbar::handleResp(unsigned srcDown, PacketPtr& pkt) {
    const auto it = respRoute_.find(pkt->id());
    simAssert(it != respRoute_.end(), "response with no recorded route");
    const unsigned dstUp = it->second.up;

    Layer& layer = respLayers_[dstUp];
    if (layer.busy) {
        ++layerConflicts_;
        if (std::find(layer.retryList.begin(), layer.retryList.end(), srcDown) ==
            layer.retryList.end()) {
            layer.retryList.push_back(srcDown);
        }
        return false;
    }
    const Tick rtt = curTick() - it->second.issued;
    latency_[dstUp]->sample(static_cast<double>(rtt));
    latencyHist_[dstUp]->sampleInt(rtt);
    respRoute_.erase(it);
    ++respsRouted_;
    acceptIntoLayer(layer, pkt, srcDown, *layer.deliverEvent);
    return true;
}

void Xbar::deliverResp(unsigned dstUp) {
    Layer& layer = respLayers_[dstUp];
    if (!layer.busy || layer.pkt == nullptr) return;

    const ReqId reqId = layer.pkt->reqId();
    const Tick acceptTick = layer.acceptTick;
    if (!upPorts_[dstUp]->sendTimingResp(layer.pkt)) {
        layer.waitingPeer = true;  // Peer will recvRespRetry -> deliverResp again.
        return;
    }
    if (reqId != 0 && curTick() > acceptTick) {
        if (SimObserver* obs = threadObserver()) {
            obs->requestSpan(reqId, ReqStage::kXbarQueue, acceptTick, curTick());
        }
    }

    if (layer.freeTick <= curTick()) {
        finishRespLayer(dstUp);
    } else if (!layer.freeEvent->scheduled()) {
        eventQueue().schedule(*layer.freeEvent, layer.freeTick);
    }
}

void Xbar::finishRespLayer(unsigned dstUp) {
    Layer& layer = respLayers_[dstUp];
    layer.busy = false;
    layer.waitingPeer = false;
    std::vector<unsigned> waiting;
    waiting.swap(layer.retryList);
    for (const unsigned down : waiting) downPorts_[down]->sendRespRetry();
}

void Xbar::handleFunctional(Packet& pkt) {
    downPorts_[route(pkt.addr())]->sendFunctional(pkt);
}

}  // namespace g5r
