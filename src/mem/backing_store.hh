// Sparse physical-memory backing store.
//
// Stores simulated memory contents in 4 KiB pages allocated on first touch,
// so a multi-GiB address space costs only what the workload actually uses.
// Multiple memory controllers (e.g. the channels of a multi-channel DRAM)
// share one BackingStore for the same physical range.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mem/packet.hh"

namespace g5r {

class BackingStore {
public:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageSize = Addr{1} << kPageShift;

    void write(Addr addr, const std::uint8_t* src, unsigned size) {
        for (unsigned i = 0; i < size; ++i) {
            page(addr + i)[offsetOf(addr + i)] = src[i];
        }
    }

    void read(Addr addr, std::uint8_t* dst, unsigned size) const {
        for (unsigned i = 0; i < size; ++i) {
            const auto it = pages_.find(pageOf(addr + i));
            dst[i] = (it == pages_.end()) ? 0 : (*it->second)[offsetOf(addr + i)];
        }
    }

    /// Service a packet's data movement: writes update the store, reads
    /// (and read responses being filled) copy the store into the payload.
    void access(Packet& pkt) {
        if (pkt.isWrite() && pkt.hasData()) {
            write(pkt.addr(), pkt.constData(), pkt.size());
        } else if (pkt.isRead()) {
            read(pkt.addr(), pkt.data(), pkt.size());
        }
    }

    template <typename T>
    T load(Addr addr) const {
        T v{};
        read(addr, reinterpret_cast<std::uint8_t*>(&v), sizeof(T));
        return v;
    }

    template <typename T>
    void store(Addr addr, T v) {
        write(addr, reinterpret_cast<const std::uint8_t*>(&v), sizeof(T));
    }

    std::size_t allocatedPages() const { return pages_.size(); }

private:
    using Page = std::array<std::uint8_t, kPageSize>;

    static Addr pageOf(Addr a) { return a >> kPageShift; }
    static Addr offsetOf(Addr a) { return a & (kPageSize - 1); }

    Page& page(Addr addr) {
        auto& slot = pages_[pageOf(addr)];
        if (!slot) slot = std::make_unique<Page>();
        return *slot;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

}  // namespace g5r
