// Bank- and row-buffer-accurate DRAM controller.
//
// Modelled after gem5's MemCtrl at the abstraction level the paper's
// evaluation depends on:
//   * per-channel read/write queues (Table 1: 64-entry read, 128-entry write)
//     with back-pressure when full,
//   * per-bank open-row state with tRCD/tRP/tCL activation timing,
//   * a shared per-channel data bus serialised at tBURST (peak bandwidth),
//   * FR-FCFS scheduling (row hits first, then oldest),
//   * write buffering with watermark-triggered drain bursts and a bus
//     turnaround penalty on read<->write switches.
//
// A MultiChannelDram front-end interleaves consecutive cache lines across N
// independent channels sharing one BackingStore; the DDR4-1/2/4ch, GDDR5 and
// HBM presets of Table 1 are in dram_configs.hh.
#pragma once

#include <deque>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/backing_store.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

/// Timing/geometry of one DRAM channel. All times in ticks (ps).
struct DramChannelParams {
    unsigned banks = 16;            ///< Banks per rank.
    unsigned ranks = 1;
    Addr rowBufferBytes = 2048;     ///< Row (page) size per bank.
    unsigned readQueueSize = 64;
    unsigned writeQueueSize = 128;
    Tick tRCD = 14'160;             ///< Activate to column command.
    Tick tCL = 14'160;              ///< Column command to first data.
    Tick tRP = 14'160;              ///< Precharge period.
    Tick tBURST = 3'413;            ///< Data-bus occupancy of one 64B line.
    Tick tSwitch = 7'500;           ///< Bus turnaround on read<->write switch.
    Tick frontendLatency = 10'000;  ///< Static controller pipeline (decode/queue).
    Tick backendLatency = 10'000;   ///< Static response path latency.
    unsigned minWritesPerSwitch = 16;
    double writeHighWatermark = 0.85;  ///< Fraction of write queue that forces a drain.
    double writeLowWatermark = 0.50;   ///< Drain until below this fraction.
    /// FR-FCFS starvation cap: after this many consecutive services that
    /// bypassed the oldest request in a queue, the oldest wins regardless of
    /// row state. Keeps a sustained row-hit stream to one bank from starving
    /// an older request to another indefinitely.
    unsigned maxStarvation = 16;
};

class MultiChannelDram;

/// One independent DRAM channel: queues, banks, bus. Owned by
/// MultiChannelDram; not directly exposed on a port.
class DramChannel : public ClockedObject {
public:
    DramChannel(Simulation& sim, std::string name, const DramChannelParams& params,
                MultiChannelDram& parent, unsigned channelId);

    /// Room for one more request of this kind?
    bool canAccept(const Packet& pkt) const;

    /// Enqueue; caller must have checked canAccept().
    void enqueue(PacketPtr pkt);

    unsigned readQueueDepth() const { return static_cast<unsigned>(readQueue_.size()); }
    unsigned writeQueueDepth() const { return static_cast<unsigned>(writeQueue_.size()); }

private:
    struct Bank {
        static constexpr Addr kNoRow = ~Addr{0};
        Addr openRow = kNoRow;
        Tick actReadyTick = 0;   ///< When the open row can accept column commands.
        Tick lastBurstEnd = 0;   ///< End of the bank's most recent data burst.
    };

    struct QueuedReq {
        PacketPtr pkt;
        Addr row;
        unsigned bank;
        Tick enqueueTick;
        ReqId reqId = 0;  ///< Causal tag; writes keep it after pkt is answered.
    };

    /// Decompose a physical address into (bank, row) for this channel.
    void decode(Addr addr, unsigned& bank, Addr& row) const;

    void processNextRequest();
    /// Pick the FR-FCFS winner in @p queue. @p headBypasses is that queue's
    /// consecutive-bypass counter (see DramChannelParams::maxStarvation).
    std::size_t pickFrFcfs(const std::deque<QueuedReq>& queue,
                           unsigned& headBypasses);
    /// Issue one request: update bank/bus state, return data-ready tick.
    Tick service(QueuedReq& req);

    DramChannelParams params_;
    MultiChannelDram& parent_;
    unsigned channelId_;
    unsigned totalBanks_;
    Addr linesPerRow_;

    std::vector<Bank> banks_;
    std::deque<QueuedReq> readQueue_;
    std::deque<QueuedReq> writeQueue_;
    CallbackEvent nextReqEvent_;

    Tick busFreeTick_ = 0;
    bool lastWasWrite_ = false;
    bool drainingWrites_ = false;
    unsigned writesThisDrain_ = 0;
    unsigned readHeadBypasses_ = 0;
    unsigned writeHeadBypasses_ = 0;

    stats::Scalar& rowHits_;
    stats::Scalar& rowMisses_;
    stats::Scalar& readBursts_;
    stats::Scalar& writeBursts_;
    stats::Scalar& busTurnarounds_;
    stats::Scalar& bytesTransferred_;
    stats::Scalar& starvationBreaks_;
    stats::Distribution& readQueueLatency_;
};

/// The externally visible memory: one response port, N channels interleaved
/// at cache-line granularity, one shared backing store.
class MultiChannelDram : public ClockedObject {
public:
    struct Params {
        AddrRange range;
        unsigned channels = 1;
        Tick clockPeriod = periodFromGHz(2);
        DramChannelParams channel;

        /// Line-interleave factor used for bank/row decoding. 0 means
        /// `channels`. Set it when the channels of one memory are split
        /// across several MultiChannelDram objects (one crossbar port per
        /// channel, as the SoC builder does): each object then sees every
        /// `decodeChannels`-th line and decodes rows accordingly.
        unsigned decodeChannels = 0;
    };

    MultiChannelDram(Simulation& sim, std::string name, const Params& params,
                     BackingStore& store);

    ResponsePort& port() { return port_; }
    const AddrRange& range() const { return params_.range; }
    BackingStore& store() { return store_; }
    unsigned numChannels() const { return params_.channels; }
    unsigned decodeChannels() const {
        return params_.decodeChannels != 0 ? params_.decodeChannels : params_.channels;
    }

    /// Peak bandwidth in bytes/second across all channels (for reporting).
    double peakBandwidth() const;

private:
    friend class DramChannel;

    class MemPort final : public ResponsePort {
    public:
        MemPort(std::string portName, MultiChannelDram& owner)
            : ResponsePort(std::move(portName)), owner_(owner) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.store_.access(pkt); }
        void recvRespRetry() override { owner_.respBlocked_ = false; owner_.trySendResponses(); }

    private:
        MultiChannelDram& owner_;
    };

    unsigned channelOf(Addr addr) const;
    bool handleReq(PacketPtr& pkt);

    /// Called by channels when a response payload is ready at @p readyTick.
    void respond(PacketPtr pkt, Tick readyTick);

    /// Called by a channel when one entry of its read or write queue frees
    /// up. Only fires the port retry when that (channel, queue) is the one
    /// whose rejection is still outstanding — any other channel freeing
    /// space would just bounce the retried packet off the same full queue.
    void channelSpaceFreed(unsigned channelId, bool wasWrite);

    void trySendResponses();

    Params params_;
    BackingStore& store_;
    MemPort port_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    CallbackEvent sendEvent_;

    struct PendingResp {
        Tick readyTick;
        PacketPtr pkt;
    };
    // Sorted insertion keeps responses in ready order across channels.
    std::deque<PendingResp> respQueue_;
    bool needReqRetry_ = false;
    unsigned retryChannel_ = 0;   ///< Channel whose queue rejected the packet.
    bool retryIsWrite_ = false;   ///< Which of its queues was full.
    bool respBlocked_ = false;

    stats::Scalar& numReads_;
    stats::Scalar& numWrites_;
    stats::Scalar& bytesRead_;
    stats::Scalar& bytesWritten_;
    stats::Scalar& rejectedRequests_;
};

}  // namespace g5r
