// SimpleMemory: a fixed-latency, optionally bandwidth-limited memory.
//
// With latency == one SoC cycle and unlimited bandwidth this is the "ideal
// 1-cycle main memory" that Figures 6 and 7 normalise against; with non-zero
// parameters it doubles as a generic scratchpad / SRAM endpoint (e.g. the
// SRAMIF scratchpad extension).
#pragma once

#include <deque>

#include "mem/addr_range.hh"
#include "mem/backing_store.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

class SimpleMemory : public ClockedObject {
public:
    struct Params {
        AddrRange range;
        Tick clockPeriod = periodFromGHz(2);
        Tick latency = periodFromGHz(2);  ///< Request-to-response latency.
        double bytesPerTick = 0.0;        ///< 0 means unlimited bandwidth.
        unsigned maxPending = 64;         ///< Response-queue depth before back-pressure.
    };

    SimpleMemory(Simulation& sim, std::string name, const Params& params,
                 BackingStore& store);

    ResponsePort& port() { return port_; }
    const AddrRange& range() const { return params_.range; }
    BackingStore& store() { return store_; }

private:
    class MemPort final : public ResponsePort {
    public:
        MemPort(std::string portName, SimpleMemory& owner)
            : ResponsePort(std::move(portName)), owner_(owner) {}
        bool recvTimingReq(PacketPtr& pkt) override { return owner_.handleReq(pkt); }
        void recvFunctional(Packet& pkt) override { owner_.store_.access(pkt); }
        void recvRespRetry() override { owner_.respBlocked_ = false; owner_.trySendResponses(); }

    private:
        SimpleMemory& owner_;
    };

    bool handleReq(PacketPtr& pkt);
    void trySendResponses();

    Params params_;
    BackingStore& store_;
    MemPort port_;
    CallbackEvent sendEvent_;

    struct PendingResp {
        Tick readyTick;
        PacketPtr pkt;
    };
    std::deque<PendingResp> respQueue_;
    Tick nextServiceTick_ = 0;  ///< Bandwidth model: when the channel frees up.
    bool needReqRetry_ = false;
    bool respBlocked_ = false;

    stats::Scalar& numReads_;
    stats::Scalar& numWrites_;
    stats::Scalar& bytesRead_;
    stats::Scalar& bytesWritten_;
};

}  // namespace g5r
