// Coherent crossbar (NoC of Table 1: 128-bit wide, 2-cycle latency).
//
// N CPU-side (upstream) ports and M mem-side (downstream) ports. Requests are
// routed by address range — optionally bit-interleaved, which is how the
// 8-bank LLC is striped — and responses are routed back to their original
// source port via the packet id. Each output direction is guarded by a
// "layer" that models the switch occupancy: header latency plus one cycle
// per 128-bit beat, with gem5-style retry lists when a layer is busy.
//
// Coherence note: the evaluated workloads are share-nothing (see DESIGN.md),
// so the crossbar routes without snooping; write-back caches above it remain
// functionally correct for disjoint working sets.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

/// Routing rule for one downstream port. With intlvBits == 0, matches the
/// whole range; otherwise additionally matches addresses whose
/// (addr >> intlvShift) % 2^intlvBits == intlvMatch (bank striping).
struct RouteSpec {
    AddrRange range;
    unsigned intlvShift = 0;
    unsigned intlvBits = 0;
    unsigned intlvMatch = 0;

    bool matches(Addr addr) const {
        if (!range.contains(addr)) return false;
        if (intlvBits == 0) return true;
        const Addr mask = (Addr{1} << intlvBits) - 1;
        return ((addr >> intlvShift) & mask) == intlvMatch;
    }
};

class Xbar : public ClockedObject {
public:
    struct Params {
        Tick clockPeriod = periodFromGHz(2);
        Cycles forwardLatency = 2;  ///< Header latency through the switch.
        unsigned widthBytes = 16;   ///< Datapath width (128 bits).
    };

    Xbar(Simulation& sim, std::string name, const Params& params);
    ~Xbar() override;

    /// Create a new upstream port (call before simulation starts).
    ResponsePort& addCpuSidePort(const std::string& suffix);

    /// Create a new downstream port with its routing rule.
    RequestPort& addMemSidePort(const std::string& suffix, const RouteSpec& route);

    std::size_t numCpuSidePorts() const { return upPorts_.size(); }
    std::size_t numMemSidePorts() const { return downPorts_.size(); }

    // --- introspection for static analysis (src/lint/soc_lint) -------------
    const ResponsePort& cpuSidePort(unsigned idx) const;
    const RequestPort& memSidePort(unsigned idx) const;
    const std::vector<RouteSpec>& routes() const { return routes_; }

private:
    class UpPort;
    class DownPort;

    /// One direction of one output port: holds at most one in-flight packet.
    struct Layer {
        bool busy = false;
        bool waitingPeer = false;  ///< Delivery attempted; peer rejected.
        Tick freeTick = 0;
        Tick acceptTick = 0;  ///< When the occupying packet was accepted.
        PacketPtr pkt;
        unsigned srcIdx = 0;  ///< Where the packet came from (for routing back).
        std::vector<unsigned> retryList;
        std::unique_ptr<CallbackEvent> deliverEvent;
        std::unique_ptr<CallbackEvent> freeEvent;
    };

    /// Book-keeping for an outstanding request: where its response must be
    /// switched back to, and when the crossbar accepted the request (the
    /// zero point of the per-requestor round-trip latency distribution).
    struct RouteInfo {
        unsigned up;
        Tick issued;
    };

    unsigned route(Addr addr) const;

    bool handleReq(unsigned srcUp, PacketPtr& pkt);
    void deliverReq(unsigned dstDown);
    void finishReqLayer(unsigned dstDown);

    bool handleResp(unsigned srcDown, PacketPtr& pkt);
    void deliverResp(unsigned dstUp);
    void finishRespLayer(unsigned dstUp);

    void handleFunctional(Packet& pkt);

    /// Occupy @p layer with @p pkt and schedule its delivery.
    void acceptIntoLayer(Layer& layer, PacketPtr& pkt, unsigned srcIdx,
                         CallbackEvent& deliverEvent);

    Params params_;
    std::vector<std::unique_ptr<UpPort>> upPorts_;
    std::vector<std::unique_ptr<DownPort>> downPorts_;
    std::vector<RouteSpec> routes_;
    std::vector<Layer> reqLayers_;   ///< One per downstream port.
    std::vector<Layer> respLayers_;  ///< One per upstream port.
    std::unordered_map<std::uint64_t, RouteInfo> respRoute_;  ///< pkt id -> route.

    stats::Scalar& reqsRouted_;
    stats::Scalar& respsRouted_;
    stats::Scalar& layerConflicts_;
    stats::Scalar& bytesRouted_;
    /// Per upstream port: round-trip ticks from request accept to response
    /// arrival ("latency.<suffix>"), indexed like upPorts_.
    std::vector<stats::Distribution*> latency_;
    /// Quantile-capable companions to latency_ ("latencyHist.<suffix>"):
    /// same sample stream, but with exact bucket counts so p50/p99/p999 are
    /// answerable and per-master histograms merge losslessly.
    std::vector<stats::Histogram*> latencyHist_;
};

}  // namespace g5r
