#include "mem/spm.hh"

#include <algorithm>

namespace g5r {
namespace {

constexpr Addr kLineBytes = 64;

Addr lineOf(Addr addr) { return addr & ~(kLineBytes - 1); }

}  // namespace

Spm::Spm(Simulation& sim, std::string objName, const Params& params)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      cpuPort_(name() + ".cpu_side", *this),
      memPort_(name() + ".mem_side", *this),
      sendEvent_([this] { trySendResponses(); }, name() + ".sendEvent",
                 EventPriority::kResponse),
      bankBusyUntil_(std::max(1u, params.banks), 0),
      readHits_(stats_.scalar("readHits", "reads served from resident lines")),
      readMisses_(stats_.scalar("readMisses", "reads that waited on line fills")),
      writes_(stats_.scalar("writes", "write accesses (allocate on write)")),
      fills_(stats_.scalar("fills", "line fills fetched from main memory")),
      mshrJoins_(stats_.scalar("mshrJoins", "read misses coalesced onto an in-flight fill")),
      bankConflicts_(stats_.scalar("bankConflicts", "accesses delayed by a busy bank")),
      bytesRead_(stats_.scalar("bytesRead", "bytes returned by reads")),
      bytesWritten_(stats_.scalar("bytesWritten", "bytes consumed by writes")) {
    simAssert(params_.banks > 0 && (params_.banks & (params_.banks - 1)) == 0,
              "SPM bank count must be a power of two");
}

Tick Spm::bankedReadyTick(Addr addr) {
    const unsigned bank = static_cast<unsigned>((addr >> 6) % params_.banks);
    const Tick start = std::max(curTick(), bankBusyUntil_[bank]);
    if (start > curTick()) ++bankConflicts_;
    bankBusyUntil_[bank] = start + clockPeriod();
    return start + cyclesToTicks(params_.accessLatency);
}

void Spm::markPresent(Addr addr, unsigned size) {
    for (Addr line = lineOf(addr); line <= lineOf(addr + size - 1); line += kLineBytes) {
        present_.insert(line);
    }
    if (params_.sizeBytes != 0 && present_.size() * kLineBytes > params_.sizeBytes) {
        panic("SPM overflow: the working set exceeds the configured capacity");
    }
}

bool Spm::handleReq(PacketPtr& pkt) {
    simAssert(params_.range.contains(pkt->addr()), "SPM request out of range");
    if (respQueue_.size() + pendingReads_.size() >= params_.maxPending) {
        needReqRetry_ = true;
        return false;
    }

    if (pkt->isWrite()) {
        // Write-allocate: the data lands in the array and the covered lines
        // become resident. No write-through — a DMA drain copies dirty
        // regions back to main memory explicitly.
        ++writes_;
        bytesWritten_ += pkt->size();
        store_.access(*pkt);
        markPresent(pkt->addr(), pkt->size());
        const Tick ready = bankedReadyTick(pkt->addr());
        if (!pkt->needsResponse()) {
            pkt.reset();  // Writebacks are absorbed silently.
            return true;
        }
        pkt->makeResponse();
        respond(std::move(pkt), ready);
        return true;
    }

    // Read: a hit needs every covered line resident.
    bytesRead_ += pkt->size();
    const Addr firstLine = lineOf(pkt->addr());
    const Addr lastLine = lineOf(pkt->addr() + pkt->size() - 1);
    bool allPresent = true;
    for (Addr line = firstLine; line <= lastLine; line += kLineBytes) {
        if (!linePresent(line)) allPresent = false;
    }
    if (allPresent) {
        ++readHits_;
        store_.access(*pkt);
        pkt->makeResponse();
        respond(std::move(pkt), bankedReadyTick(pkt->addr()));
        return true;
    }

    // Miss: fetch the absent lines downstream, coalescing across waiting
    // reads (one fill per line, MSHR-style).
    ++readMisses_;
    const std::uint64_t key = nextReadKey_++;
    PendingRead& pending = pendingReads_[key];
    pending.pkt = std::move(pkt);
    pending.arrival = curTick();
    for (Addr line = firstLine; line <= lastLine; line += kLineBytes) {
        if (linePresent(line)) continue;
        auto [it, inserted] = mshrs_.try_emplace(line);
        if (inserted) fillQueue_.push_back(line);
        else ++mshrJoins_;  // Coalesced: this read joins the line's in-flight fill.
        it->second.push_back(key);
        ++pending.remainingFills;
    }
    sendFills();
    return true;
}

void Spm::sendFills() {
    while (!fillBlocked_ && fillsInflight_ < params_.fillInflight && !fillQueue_.empty()) {
        PacketPtr fill = makeReadPacket(fillQueue_.front(), kLineBytes);
        // MSHR join semantics for causal tracing: the fill runs on behalf
        // of its *first* waiter; later joiners still get their own spmFill
        // spans from their own pending reads.
        const auto mshrIt = mshrs_.find(fillQueue_.front());
        if (mshrIt != mshrs_.end() && !mshrIt->second.empty()) {
            const auto readIt = pendingReads_.find(mshrIt->second.front());
            if (readIt != pendingReads_.end() && readIt->second.pkt != nullptr) {
                fill->setReqId(readIt->second.pkt->reqId());
            }
        }
        if (!memPort_.sendTimingReq(fill)) {
            fillBlocked_ = true;
            return;
        }
        ++fillsInflight_;
        ++fills_;
        fillQueue_.pop_front();
    }
}

bool Spm::handleFillResp(PacketPtr& pkt) {
    const Addr line = pkt->addr();
    simAssert(fillsInflight_ > 0, "SPM fill response without an outstanding fill");
    --fillsInflight_;

    // A write may have allocated the line while the fill was in flight; its
    // fresh data wins over the (stale) memory copy.
    if (!linePresent(line)) {
        store_.write(line, pkt->constData(), kLineBytes);
        markPresent(line, kLineBytes);
    }
    pkt.reset();

    const auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        const std::vector<std::uint64_t> waiters = std::move(it->second);
        mshrs_.erase(it);
        for (const std::uint64_t key : waiters) {
            const auto readIt = pendingReads_.find(key);
            simAssert(readIt != pendingReads_.end(), "SPM fill for an unknown read");
            PendingRead& pending = readIt->second;
            simAssert(pending.remainingFills > 0, "SPM fill count underflow");
            if (--pending.remainingFills == 0) {
                PacketPtr read = std::move(pending.pkt);
                const Tick arrival = pending.arrival;
                pendingReads_.erase(readIt);
                const Tick ready = bankedReadyTick(read->addr());
                if (read->reqId() != 0) {
                    if (SimObserver* obs = threadObserver()) {
                        obs->requestSpan(read->reqId(), ReqStage::kSpmFill, arrival, ready);
                    }
                }
                store_.access(*read);
                read->makeResponse();
                respond(std::move(read), ready);
            }
        }
    }
    maybeSendReqRetry();
    sendFills();
    return true;
}

void Spm::respond(PacketPtr pkt, Tick readyTick) {
    // Sorted insertion: hits and fill completions become ready out of order.
    auto it = std::upper_bound(
        respQueue_.begin(), respQueue_.end(), readyTick,
        [](Tick t, const PendingResp& r) { return t < r.readyTick; });
    respQueue_.insert(it, PendingResp{readyTick, std::move(pkt)});
    if (!sendEvent_.scheduled()) {
        eventQueue().schedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    } else if (respQueue_.front().readyTick < sendEvent_.when()) {
        eventQueue().reschedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

void Spm::trySendResponses() {
    while (!respBlocked_ && !respQueue_.empty() && respQueue_.front().readyTick <= curTick()) {
        PacketPtr& pkt = respQueue_.front().pkt;
        if (!cpuPort_.sendTimingResp(pkt)) {
            respBlocked_ = true;
            return;
        }
        respQueue_.pop_front();
        maybeSendReqRetry();
    }
    if (!respQueue_.empty() && !respBlocked_ && !sendEvent_.scheduled()) {
        eventQueue().schedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

void Spm::maybeSendReqRetry() {
    if (needReqRetry_ && respQueue_.size() + pendingReads_.size() < params_.maxPending) {
        needReqRetry_ = false;
        cpuPort_.sendReqRetry();
    }
}

void Spm::handleFunctional(Packet& pkt) {
    // Split at line boundaries: resident bytes live here, absent bytes in
    // main memory. Functional writes allocate, like timing writes.
    const Addr start = pkt.addr();
    Addr cursor = start;
    const Addr end = start + pkt.size();
    while (cursor < end) {
        const Addr lineEnd = lineOf(cursor) + kLineBytes;
        const unsigned chunk = static_cast<unsigned>(std::min<Addr>(end, lineEnd) - cursor);
        if (pkt.isWrite()) {
            store_.write(cursor, pkt.constData() + (cursor - start), chunk);
            markPresent(cursor, chunk);
        } else if (linePresent(lineOf(cursor))) {
            store_.read(cursor, pkt.data() + (cursor - start), chunk);
        } else {
            Packet sub{MemCmd::kReadReq, cursor, chunk};
            memPort_.sendFunctional(sub);
            std::copy_n(sub.constData(), chunk, pkt.data() + (cursor - start));
        }
        cursor += chunk;
    }
}

}  // namespace g5r
