#include "mem/simple_mem.hh"

namespace g5r {

SimpleMemory::SimpleMemory(Simulation& sim, std::string objName, const Params& params,
                           BackingStore& backing)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      store_(backing),
      port_(name() + ".port", *this),
      sendEvent_([this] { trySendResponses(); }, name() + ".sendEvent",
                 EventPriority::kResponse),
      numReads_(stats_.scalar("numReads", "read requests serviced")),
      numWrites_(stats_.scalar("numWrites", "write requests serviced")),
      bytesRead_(stats_.scalar("bytesRead", "bytes returned by reads")),
      bytesWritten_(stats_.scalar("bytesWritten", "bytes consumed by writes")) {}

bool SimpleMemory::handleReq(PacketPtr& pkt) {
    if (respQueue_.size() >= params_.maxPending) {
        needReqRetry_ = true;
        return false;
    }

    if (pkt->isRead()) {
        ++numReads_;
        bytesRead_ += pkt->size();
    } else {
        ++numWrites_;
        bytesWritten_ += pkt->size();
    }

    store_.access(*pkt);

    if (!pkt->needsResponse()) {
        pkt.reset();  // Writebacks are absorbed silently.
        return true;
    }

    // Bandwidth model: serialise packets over the channel.
    const Tick start = std::max(curTick(), nextServiceTick_);
    Tick occupancy = 0;
    if (params_.bytesPerTick > 0.0) {
        occupancy = static_cast<Tick>(static_cast<double>(pkt->size()) / params_.bytesPerTick);
    }
    nextServiceTick_ = start + occupancy;

    pkt->makeResponse();
    const Tick ready = start + params_.latency + occupancy;
    respQueue_.push_back(PendingResp{ready, std::move(pkt)});
    if (!sendEvent_.scheduled()) eventQueue().schedule(sendEvent_, ready);
    return true;
}

void SimpleMemory::trySendResponses() {
    while (!respBlocked_ && !respQueue_.empty() && respQueue_.front().readyTick <= curTick()) {
        PacketPtr& pkt = respQueue_.front().pkt;
        if (!port_.sendTimingResp(pkt)) {
            respBlocked_ = true;
            return;
        }
        respQueue_.pop_front();
        if (needReqRetry_) {
            needReqRetry_ = false;
            port_.sendReqRetry();
        }
    }
    if (!respQueue_.empty() && !respBlocked_ && !sendEvent_.scheduled()) {
        eventQueue().schedule(sendEvent_, std::max(curTick(), respQueue_.front().readyTick));
    }
}

}  // namespace g5r
