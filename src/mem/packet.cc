#include "mem/packet.hh"

#include <sstream>

namespace g5r {

const char* memCmdName(MemCmd cmd) {
    switch (cmd) {
    case MemCmd::kReadReq: return "ReadReq";
    case MemCmd::kReadResp: return "ReadResp";
    case MemCmd::kWriteReq: return "WriteReq";
    case MemCmd::kWriteResp: return "WriteResp";
    case MemCmd::kWritebackDirty: return "WritebackDirty";
    case MemCmd::kPrefetchReq: return "PrefetchReq";
    }
    return "Unknown";
}

std::string Packet::toString() const {
    std::ostringstream os;
    os << memCmdName(cmd_) << " [0x" << std::hex << addr_ << std::dec << " +" << size_
       << "] id=" << id_ << " req=" << requestor_;
    return os.str();
}

}  // namespace g5r
