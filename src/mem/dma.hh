// DmaEngine: a descriptor-driven copy engine between main memory and a
// scratchpad (mem/spm.hh).
//
// Descriptors (src, dst, bytes, direction) process strictly in FIFO order,
// one at a time. The active descriptor is split into line-bounded chunks
// (never crossing a 64 B boundary on either the source or the destination
// side), read from the source port with up to maxInflight outstanding
// requests; each read response turns into a write on the destination port,
// and the descriptor completes — firing its callback — once every write has
// been acknowledged. Both ports implement the full retry protocol
// (per-port send queue + blocked flag), so back-pressure anywhere simply
// throttles the engine.
#pragma once

#include <deque>
#include <functional>

#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

class DmaEngine : public ClockedObject {
public:
    enum class Direction {
        kMemToSpm,  ///< Read through memPort, write through spmPort (prefetch).
        kSpmToMem,  ///< Read through spmPort, write through memPort (drain).
    };

    struct Descriptor {
        Addr src = 0;
        Addr dst = 0;
        std::uint64_t bytes = 0;
        Direction dir = Direction::kMemToSpm;
        /// Invoked (once) when the last write of this descriptor is acked.
        std::function<void()> onComplete;
        /// Causal-tracing identity: the parent request this copy serves
        /// (0 = none), and the descriptor's own ID, allocated by enqueue().
        ReqId parent = 0;
        ReqId id = 0;
    };

    struct Params {
        Tick clockPeriod = periodFromGHz(1);
        unsigned maxInflight = 64;  ///< Outstanding line requests (reads+writes).
        unsigned lineBytes = 64;    ///< Chunking granularity.
    };

    DmaEngine(Simulation& sim, std::string name, const Params& params);

    RequestPort& memPort() { return memPort_; }
    RequestPort& spmPort() { return spmPort_; }
    const RequestPort& memPort() const { return memPort_; }
    const RequestPort& spmPort() const { return spmPort_; }

    /// Queue a copy. Descriptors complete in submission order.
    void enqueue(Descriptor desc);

    bool idle() const { return !active_ && queue_.empty(); }
    std::uint64_t descriptorsCompleted() const {
        return static_cast<std::uint64_t>(descriptors_.value());
    }

private:
    class Port final : public RequestPort {
    public:
        Port(std::string portName, DmaEngine& owner, bool isMem)
            : RequestPort(std::move(portName)), owner_(owner), isMem_(isMem) {}
        bool recvTimingResp(PacketPtr& pkt) override { return owner_.handleResp(pkt); }
        void recvReqRetry() override { owner_.portUnblocked(isMem_); }

    private:
        DmaEngine& owner_;
        bool isMem_;
    };

    /// Per-port send machinery: queued packets drain in order; a rejection
    /// blocks the lane until the peer's retry.
    struct Lane {
        std::deque<PacketPtr> queue;
        bool blocked = false;
    };

    Lane& laneOf(bool isMem) { return isMem ? memLane_ : spmLane_; }
    bool srcIsMem() const { return active_->dir == Direction::kMemToSpm; }

    void process();
    void issueReads();
    void sendQueued(bool isMem);
    void portUnblocked(bool isMem);
    bool handleResp(PacketPtr& pkt);
    void completeActive();

    Params params_;
    Port memPort_;
    Port spmPort_;
    Lane memLane_;
    Lane spmLane_;
    CallbackEvent processEvent_;

    std::deque<Descriptor> queue_;
    std::unique_ptr<Descriptor> active_;
    Tick activeStart_ = 0;
    std::uint64_t cursor_ = 0;        ///< Bytes whose read has been issued.
    unsigned outstandingReads_ = 0;
    unsigned outstandingWrites_ = 0;

    stats::Scalar& descriptors_;
    stats::Scalar& bytesCopied_;
    stats::Histogram& descriptorLatency_;
    stats::Distribution& inflight_;
};

}  // namespace g5r
