// Two-pass assembler for the mini-ISA.
//
// Accepts the usual RISC-style text form with labels, comments (';' or '#'),
// register ABI aliases and a handful of pseudo-instructions (li, mv, j,
// call, ret, nop, ble, bgt). Workload kernels (tests/workloads and soc/) are
// written in this syntax and assembled at simulator start-up.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/isa.hh"

namespace g5r::isa {

struct Program {
    std::vector<std::uint64_t> code;          ///< Encoded instructions, in order.
    std::map<std::string, std::uint64_t> labels;  ///< Label -> byte offset from base.

    std::size_t sizeBytes() const { return code.size() * kInstrBytes; }

    /// Byte offset of a label; throws AsmError if absent.
    std::uint64_t offsetOf(const std::string& label) const;
};

/// Assembly failure: message carries line number and context.
class AsmError : public std::runtime_error {
public:
    explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

/// Assemble @p source. Branch/jump labels resolve to pc-relative offsets, so
/// the program is position-independent and can be loaded at any base.
Program assemble(std::string_view source);

/// Render one decoded instruction back to text (debug/trace aid).
std::string disassemble(const Instr& instr);

}  // namespace g5r::isa
