#include "cpu/functional.hh"

namespace g5r::isa {

StopReason FunctionalCore::doSyscall() {
    const auto num = static_cast<Syscall>(state_.read(17));
    switch (num) {
    case Syscall::kExit:
        return StopReason::kHalted;
    case Syscall::kSleepNs:
        lastSleepNs_ = state_.read(10);
        return StopReason::kSleeping;
    case Syscall::kPrintChar:
        console_.push_back(static_cast<char>(state_.read(10)));
        return StopReason::kRunning;
    case Syscall::kPrintInt:
        console_ += std::to_string(static_cast<std::int64_t>(state_.read(10)));
        return StopReason::kRunning;
    }
    panicStream("unknown syscall " + std::to_string(state_.read(17)));
}

StopReason FunctionalCore::step() {
    const Instr in = decode(mem_.load<std::uint64_t>(state_.pc));
    const std::uint64_t pc = state_.pc;
    std::uint64_t nextPc = pc + kInstrBytes;
    ++retired_;

    if (in.isHalt()) return StopReason::kHalted;

    if (in.isSyscall()) {
        const StopReason r = doSyscall();
        if (r == StopReason::kHalted) return r;
        state_.pc = nextPc;
        return r;
    }

    if (in.isLoad()) {
        const std::uint64_t addr = effectiveAddr(in, state_.read(in.rs1));
        std::uint64_t raw = 0;
        mem_.read(addr, reinterpret_cast<std::uint8_t*>(&raw), in.memBytes());
        state_.write(in.rd, extendLoad(in, raw));
    } else if (in.isStore()) {
        const std::uint64_t addr = effectiveAddr(in, state_.read(in.rs1));
        const std::uint64_t value = state_.read(in.rs2);
        mem_.write(addr, reinterpret_cast<const std::uint8_t*>(&value), in.memBytes());
    } else if (in.isBranch()) {
        if (branchTaken(in, state_.read(in.rs1), state_.read(in.rs2))) {
            nextPc = controlTarget(in, pc, 0);
        }
    } else if (in.isJump()) {
        state_.write(in.rd, pc + kInstrBytes);
        nextPc = controlTarget(in, pc, state_.read(in.rs1));
    } else if (in.op == Opcode::kRdCycle) {
        // The functional model has no clock; retired count is a stand-in.
        state_.write(in.rd, retired_);
    } else {
        state_.write(in.rd, aluResult(in, state_.read(in.rs1), state_.read(in.rs2)));
    }

    state_.pc = nextPc;
    return StopReason::kRunning;
}

StopReason FunctionalCore::run(std::uint64_t maxInstrs) {
    for (std::uint64_t i = 0; i < maxInstrs; ++i) {
        const StopReason r = step();
        if (r == StopReason::kHalted) return StopReason::kHalted;
    }
    return StopReason::kMaxInstrs;
}

}  // namespace g5r::isa
