// Functional (untimed) executor: the golden model.
//
// Runs a program directly against a BackingStore with zero timing. Used to
// validate workload kernels, as the reference the timing cores are tested
// against, and by tests that only care about architectural results.
#pragma once

#include <functional>
#include <string>

#include "cpu/exec.hh"
#include "cpu/isa.hh"
#include "mem/backing_store.hh"

namespace g5r::isa {

/// Why a functional step/run stopped.
enum class StopReason {
    kRunning,   ///< step(): instruction retired normally.
    kHalted,    ///< HALT or exit syscall.
    kSleeping,  ///< sleep syscall (functional model just notes it).
    kMaxInstrs, ///< run(): instruction budget exhausted.
};

class FunctionalCore {
public:
    FunctionalCore(BackingStore& mem, std::uint64_t entryPc)
        : mem_(mem) {
        state_.pc = entryPc;
    }

    ArchState& state() { return state_; }
    const ArchState& state() const { return state_; }
    std::uint64_t instructionsRetired() const { return retired_; }
    const std::string& consoleOutput() const { return console_; }
    std::uint64_t lastSleepNs() const { return lastSleepNs_; }

    /// Execute one instruction.
    StopReason step();

    /// Execute until halt/exit or @p maxInstrs retire.
    StopReason run(std::uint64_t maxInstrs = 100'000'000);

private:
    StopReason doSyscall();

    BackingStore& mem_;
    ArchState state_;
    std::uint64_t retired_ = 0;
    std::uint64_t lastSleepNs_ = 0;
    std::string console_;
};

}  // namespace g5r::isa
