// The simulator's mini-ISA.
//
// A RISC-style 64-bit ISA: 32 general-purpose registers (x0 hard-wired to
// zero), fixed 8-byte instruction encoding (one opcode/register word + one
// 32-bit immediate word). It exists so the paper's full-system workloads —
// the sorting kernels of Fig. 5 with their sleep phases — can run on a real
// pipeline model with real instruction and data cache traffic, substituting
// for gem5's Armv8 + Linux stack (see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace g5r::isa {

inline constexpr unsigned kNumRegs = 32;
inline constexpr unsigned kInstrBytes = 8;

enum class Opcode : std::uint8_t {
    // ALU register-register.
    kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu, kMul, kDiv, kRem,
    // ALU register-immediate (imm sign-extended to 64 bits).
    kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kLui,
    // Memory: address = rs1 + imm.
    kLd, kLw, kLb, kSd, kSw, kSb,
    // Control flow: branch target = pc + imm; JALR target = rs1 + imm.
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu, kJal, kJalr,
    // System.
    kEcall,    ///< Syscall: number in x17, args in x10/x11, result in x10.
    kRdCycle,  ///< rd <- current core cycle count.
    kHalt,     ///< Stop the core (used as a program end guard).
    kOpcodeCount,
};

/// A decoded instruction.
struct Instr {
    Opcode op = Opcode::kHalt;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    bool isLoad() const { return op == Opcode::kLd || op == Opcode::kLw || op == Opcode::kLb; }
    bool isStore() const { return op == Opcode::kSd || op == Opcode::kSw || op == Opcode::kSb; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const {
        switch (op) {
        case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
        case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
            return true;
        default:
            return false;
        }
    }
    bool isJump() const { return op == Opcode::kJal || op == Opcode::kJalr; }
    bool isControl() const { return isBranch() || isJump(); }
    bool isSyscall() const { return op == Opcode::kEcall; }
    bool isHalt() const { return op == Opcode::kHalt; }

    /// Number of bytes a memory op moves.
    unsigned memBytes() const {
        switch (op) {
        case Opcode::kLd: case Opcode::kSd: return 8;
        case Opcode::kLw: case Opcode::kSw: return 4;
        case Opcode::kLb: case Opcode::kSb: return 1;
        default: return 0;
        }
    }

    /// Does the instruction write rd?
    bool writesRd() const {
        return !(isStore() || isBranch() || isHalt() || isSyscall());
    }
};

/// Pack a decoded instruction into its 8-byte encoding.
constexpr std::uint64_t encode(const Instr& in) {
    const std::uint32_t word0 = static_cast<std::uint32_t>(in.op) |
                                (static_cast<std::uint32_t>(in.rd) << 8) |
                                (static_cast<std::uint32_t>(in.rs1) << 13) |
                                (static_cast<std::uint32_t>(in.rs2) << 18);
    return static_cast<std::uint64_t>(word0) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.imm)) << 32);
}

/// Unpack an 8-byte encoding. Bytes that are not a valid opcode decode as
/// HALT, so a core speculating past the end of a program stops cleanly.
constexpr Instr decode(std::uint64_t raw) {
    Instr in;
    const auto word0 = static_cast<std::uint32_t>(raw);
    in.op = (word0 & 0xFF) < static_cast<std::uint32_t>(Opcode::kOpcodeCount)
                ? static_cast<Opcode>(word0 & 0xFF)
                : Opcode::kHalt;
    in.rd = static_cast<std::uint8_t>((word0 >> 8) & 0x1F);
    in.rs1 = static_cast<std::uint8_t>((word0 >> 13) & 0x1F);
    in.rs2 = static_cast<std::uint8_t>((word0 >> 18) & 0x1F);
    in.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(raw >> 32));
    return in;
}

/// Mnemonic for an opcode (assembler/disassembler tables).
std::string_view mnemonic(Opcode op);

/// Parse a mnemonic; returns kOpcodeCount when unknown.
Opcode opcodeFromMnemonic(std::string_view m);

/// Syscall numbers recognised by the cores (in x17 at ECALL).
enum class Syscall : std::uint64_t {
    kExit = 0,      ///< Stop this core's program.
    kSleepNs = 1,   ///< x10 = nanoseconds to sleep (pipeline idles).
    kPrintChar = 2, ///< x10 = character.
    kPrintInt = 3,  ///< x10 = integer, printed in decimal.
};

}  // namespace g5r::isa
