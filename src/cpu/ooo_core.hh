// Out-of-order core timing model.
//
// A detailed-enough OoO pipeline parameterised per Table 1: 3-wide
// fetch/rename with a 4-wide commit, 92-entry instruction queue, 192-entry
// ROB, 48+48 load/store queues. Execution is *honest*: values are computed
// in the execute stage (exec.hh semantics), loads get their data from the
// timing memory system (with store-to-load forwarding), stores write through
// a post-commit store buffer, and branches resolve at execute with a full
// squash of younger work on a misprediction.
//
// The core raises hardware events on an optional HwEventBus — commit-lane
// pulses and cycle pulses — which is how the PMU RTL model observes it, and
// exposes the statistics Fig. 5 compares against the PMU's own counters.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/exec.hh"
#include "cpu/isa.hh"
#include "mem/addr_range.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/hw_events.hh"
#include "sim/simulation.hh"

namespace g5r {

struct OooCoreParams {
    unsigned width = 3;        ///< Fetch/rename/issue width (Table 1: 3-wide).
    unsigned commitWidth = 4;  ///< Paper: "can commit up to four per cycle".
    unsigned iqEntries = 92;
    unsigned robEntries = 192;
    unsigned ldqEntries = 48;
    unsigned stqEntries = 48;
    unsigned storeBufferEntries = 16;  ///< Post-commit write queue to the D-cache.
    unsigned frontendDepth = 3;        ///< Fetch-to-rename pipeline stages.
    unsigned mulLatency = 3;
    unsigned divLatency = 12;
    unsigned memIssuePerCycle = 2;     ///< LSQ -> D-cache ports per cycle.
    Tick clockPeriod = periodFromGHz(2);

    /// Device/IO ranges: loads to these are strongly ordered — they issue
    /// only from the ROB head (never speculatively), since reading a device
    /// register can have side effects and must observe up-to-date state.
    std::vector<AddrRange> stronglyOrdered;
};

class OooCore : public ClockedObject {
public:
    OooCore(Simulation& sim, std::string name, const OooCoreParams& params,
            std::uint64_t entryPc);
    ~OooCore() override;

    RequestPort& icachePort() { return iport_; }
    RequestPort& dcachePort() { return dport_; }

    /// Attach the PMU sideband. With @p spreadAcrossLanes (the paper's
    /// four commit-event wires), commits pulse lanes commitLine..+3, one
    /// pulse per lane used this cycle; otherwise all commits pulse the
    /// single @p commitLine (used when several cores share one PMU).
    void setEventBus(HwEventBus* bus, unsigned commitLine = HwEventBus::kCommit0,
                     bool spreadAcrossLanes = true) {
        eventBus_ = bus;
        eventCommitLine_ = commitLine;
        eventSpreadLanes_ = spreadAcrossLanes;
    }

    /// Invoked once when the program exits (exit syscall or HALT commit).
    void setExitCallback(std::function<void()> cb) { exitCallback_ = std::move(cb); }

    /// Change the boot pc; only valid before the simulation starts.
    void setEntry(std::uint64_t entryPc) { fetchPc_ = entryPc; }

    void startup() override;

    bool halted() const { return halted_; }
    std::uint64_t committedInstructions() const { return numCommitted_; }

    /// Core cycles elapsed, accurate even mid-sleep (dozing cores accrue
    /// lazily so time-sampled statistics like Fig. 5's stay correct).
    std::uint64_t cyclesRetired() const {
        std::uint64_t cycles = numCycles_;
        if (dozing_) cycles += (curTick() - dozeFromTick_) / clockPeriod();
        return cycles;
    }
    const std::string& consoleOutput() const { return console_; }

    /// Architectural register value (valid once halted; testing aid).
    std::uint64_t archReg(unsigned idx) const { return archState_.read(idx); }

private:
    // ---- dynamic instruction bookkeeping ----
    using Seq = std::uint64_t;
    static constexpr Seq kNoProducer = ~Seq{0};

    struct DynInstr {
        isa::Instr instr;
        std::uint64_t pc = 0;
        std::uint64_t predictedNext = 0;  ///< Fetch-time next-pc prediction.
        Cycles readyCycle = 0;  ///< When it may leave the fetch queue.
    };

    struct RobEntry {
        isa::Instr instr;
        std::uint64_t pc = 0;
        Seq seq = 0;
        std::uint64_t predictedNext = 0;
        bool issued = false;
        bool completed = false;
        std::uint64_t result = 0;        ///< rd value (or link value).
        std::uint64_t actualNext = 0;    ///< Resolved next pc (control ops).
        // Operand linkage captured at rename.
        Seq producer1 = kNoProducer;
        Seq producer2 = kNoProducer;
    };

    struct LdqEntry {
        Seq seq = 0;
        std::uint64_t addr = 0;
        unsigned size = 0;
        bool addrReady = false;
        bool done = false;
    };

    struct StqEntry {
        Seq seq = 0;
        std::uint64_t addr = 0;
        unsigned size = 0;
        std::uint64_t data = 0;
        bool addrReady = false;
    };

    struct StoreBufferEntry {
        std::uint64_t addr = 0;
        unsigned size = 0;
        std::uint64_t data = 0;
        bool issued = false;
    };

    struct Completion {
        Cycles cycle;
        Seq seq;
    };

    // ---- ports ----
    class IcachePort final : public RequestPort {
    public:
        IcachePort(std::string n, OooCore& c) : RequestPort(std::move(n)), core_(c) {}
        bool recvTimingResp(PacketPtr& pkt) override { return core_.recvIcacheResp(pkt); }
        void recvReqRetry() override { core_.icacheBlocked_ = false; }

    private:
        OooCore& core_;
    };

    class DcachePort final : public RequestPort {
    public:
        DcachePort(std::string n, OooCore& c) : RequestPort(std::move(n)), core_(c) {}
        bool recvTimingResp(PacketPtr& pkt) override { return core_.recvDcacheResp(pkt); }
        void recvReqRetry() override { core_.dcacheBlocked_ = false; }

    private:
        OooCore& core_;
    };

    // ---- pipeline stages (called once per cycle, commit-first order) ----
    void tick();
    void commitStage();
    void completeStage();
    void issueStage();
    void renameStage();
    void fetchStage();
    void drainStoreBuffer();

    // ---- helpers ----
    bool recvIcacheResp(PacketPtr& pkt);
    bool recvDcacheResp(PacketPtr& pkt);

    RobEntry* findRob(Seq seq);
    bool operandReady(Seq producer) const;
    std::uint64_t operandValue(unsigned archReg, Seq producer) const;
    void squashAfter(Seq seq, std::uint64_t newFetchPc);
    void repairRatAfterSquash();
    void executeInstr(RobEntry& rob);
    unsigned executionLatency(const isa::Instr& in) const;
    bool tryIssueLoad(RobEntry& rob, LdqEntry& ldq);
    void commitSyscall(const RobEntry& rob);
    void haltCore();
    void scheduleNextCycle();

    // ---- configuration / wiring ----
    OooCoreParams params_;
    IcachePort iport_;
    DcachePort dport_;
    CallbackEvent tickEvent_;
    HwEventBus* eventBus_ = nullptr;
    unsigned eventCommitLine_ = HwEventBus::kCommit0;
    bool eventSpreadLanes_ = true;
    std::function<void()> exitCallback_;

    // ---- architectural & speculative state ----
    isa::ArchState archState_;
    std::array<Seq, isa::kNumRegs> rat_;  ///< arch reg -> producing seq (or kNoProducer).
    BranchPredictor bpred_;

    // ---- frontend ----
    std::uint64_t fetchPc_;
    std::uint64_t fetchEpoch_ = 0;
    std::deque<DynInstr> fetchQueue_;
    static constexpr unsigned kLineBytes = 64;
    /// Small fully-associative fetch-line buffer with next-line prefetch.
    struct FetchLine {
        std::uint64_t addr = ~std::uint64_t{0};
        bool valid = false;
        std::uint64_t lastUsed = 0;
        std::array<std::uint8_t, kLineBytes> data{};
    };
    static constexpr unsigned kFetchLines = 4;
    std::array<FetchLine, kFetchLines> fetchLines_;
    std::uint64_t fetchLineLru_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> fetchesInFlight_;  ///< pkt id -> epoch.
    std::unordered_map<std::uint64_t, std::uint64_t> fetchAddrPending_;  ///< line addr -> count.
    bool icacheBlocked_ = false;

    FetchLine* findFetchLine(std::uint64_t lineAddr);
    void requestFetchLine(std::uint64_t lineAddr);

    // ---- backend ----
    std::deque<RobEntry> rob_;
    std::vector<Seq> iq_;  ///< Seqs waiting to issue (age-ordered).
    std::deque<LdqEntry> ldq_;
    std::deque<StqEntry> stq_;
    std::deque<StoreBufferEntry> storeBuffer_;
    std::vector<Completion> completions_;
    std::unordered_map<std::uint64_t, Seq> loadsInFlight_;  ///< pkt id -> seq.
    std::unordered_map<std::uint64_t, std::size_t> storesInFlight_;  ///< pkt id (acks).
    bool dcacheBlocked_ = false;

    Seq nextSeq_ = 0;
    Cycles cycle_ = 0;
    bool halted_ = false;
    Tick sleepUntil_ = 0;
    bool dozing_ = false;
    Tick dozeFromTick_ = 0;
    std::string console_;

    // ---- statistics ----
    std::uint64_t numCommitted_ = 0;
    std::uint64_t numCycles_ = 0;
    stats::Scalar& statCommitted_;
    stats::Scalar& statCycles_;
    stats::Scalar& statMispredicts_;
    stats::Scalar& statBranches_;
    stats::Scalar& statSquashed_;
    stats::Scalar& statLoads_;
    stats::Scalar& statStores_;
    stats::Scalar& statStlForwards_;
    stats::Scalar& statRobFullStalls_;
    stats::Scalar& statIqFullStalls_;
    stats::Scalar& statLsqFullStalls_;
    stats::Scalar& statSleepCycles_;
};

}  // namespace g5r
