#include "cpu/simple_core.hh"

#include <cstring>

namespace g5r {

using isa::Instr;
using isa::Opcode;

SimpleCore::SimpleCore(Simulation& sim, std::string objName, const SimpleCoreParams& params,
                       std::uint64_t entryPc)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      iport_(name() + ".icache_port", *this),
      dport_(name() + ".dcache_port", *this),
      stepEvent_([this] { step(); }, name() + ".step"),
      statCommitted_(stats_.scalar("committedInsts", "instructions committed")),
      statLoads_(stats_.scalar("loads", "loads executed")),
      statStores_(stats_.scalar("stores", "stores executed")),
      statIpc_(stats_.formula("ipc", "instructions per cycle", [this] {
          const auto cycles = cyclesRetired();
          return cycles > 0 ? static_cast<double>(numCommitted_) /
                                  static_cast<double>(cycles)
                            : 0.0;
      })) {
    state_.pc = entryPc;
}

void SimpleCore::startup() {
    eventQueue().schedule(stepEvent_, clockEdge());
}

void SimpleCore::haltCore() {
    halted_ = true;
    if (exitCallback_) exitCallback_();
}

void SimpleCore::step() {
    if (halted_) return;

    const std::uint64_t line = state_.pc & ~static_cast<std::uint64_t>(kLineBytes - 1);
    if (!lineValid_ || lineAddr_ != line) {
        if (fetchPending_ || fetchBlocked_) return;  // Resumed by response/retry.
        auto pkt = makeReadPacket(line, kLineBytes);
        if (!iport_.sendTimingReq(pkt)) {
            fetchBlocked_ = true;
            return;
        }
        fetchPending_ = true;
        return;
    }

    std::uint64_t raw = 0;
    std::memcpy(&raw, lineData_.data() + (state_.pc - line), sizeof(raw));
    execute(isa::decode(raw));
}

void SimpleCore::execute(const Instr& in) {
    const std::uint64_t pc = state_.pc;

    if (in.isHalt()) {
        ++numCommitted_;
        ++statCommitted_;
        haltCore();
        return;
    }
    if (in.isSyscall()) {
        doSyscall();
        return;
    }

    if (in.isMem()) {
        // Blocking access: issue and wait for the response.
        const std::uint64_t addr = isa::effectiveAddr(in, state_.read(in.rs1));
        PacketPtr pkt;
        if (in.isLoad()) {
            pkt = makeReadPacket(addr, in.memBytes());
            ++statLoads_;
        } else {
            pkt = makeWritePacket(addr, in.memBytes());
            const std::uint64_t value = state_.read(in.rs2);
            std::memcpy(pkt->data(), &value, in.memBytes());
            ++statStores_;
        }
        memInstr_ = in;
        if (!dport_.sendTimingReq(pkt)) {
            dataBlocked_ = true;
            blockedPkt_ = std::move(pkt);
            return;
        }
        dataPending_ = true;
        return;
    }

    std::uint64_t nextPc = pc + isa::kInstrBytes;
    unsigned latency = params_.execLatency;
    if (in.isBranch()) {
        if (isa::branchTaken(in, state_.read(in.rs1), state_.read(in.rs2))) {
            nextPc = isa::controlTarget(in, pc, 0);
            latency += params_.branchPenalty;
        }
    } else if (in.isJump()) {
        state_.write(in.rd, pc + isa::kInstrBytes);
        nextPc = isa::controlTarget(in, pc, state_.read(in.rs1));
        latency += params_.branchPenalty;
    } else if (in.op == Opcode::kRdCycle) {
        state_.write(in.rd, cyclesRetired());
    } else {
        state_.write(in.rd, isa::aluResult(in, state_.read(in.rs1), state_.read(in.rs2)));
        if (in.op == Opcode::kMul) latency = params_.mulLatency;
        if (in.op == Opcode::kDiv || in.op == Opcode::kRem) latency = params_.divLatency;
    }
    finishInstr(nextPc, latency);
}

void SimpleCore::doSyscall() {
    const auto num = static_cast<isa::Syscall>(state_.read(17));
    switch (num) {
    case isa::Syscall::kExit:
        ++numCommitted_;
        ++statCommitted_;
        haltCore();
        return;
    case isa::Syscall::kSleepNs: {
        // Idle the core for the requested duration.
        ++numCommitted_;
        ++statCommitted_;
        state_.pc += isa::kInstrBytes;
        eventQueue().schedule(stepEvent_, curTick() + state_.read(10) * 1000);
        return;
    }
    case isa::Syscall::kPrintChar:
        console_.push_back(static_cast<char>(state_.read(10)));
        break;
    case isa::Syscall::kPrintInt:
        console_ += std::to_string(static_cast<std::int64_t>(state_.read(10)));
        break;
    }
    finishInstr(state_.pc + isa::kInstrBytes, params_.execLatency);
}

void SimpleCore::finishInstr(std::uint64_t nextPc, unsigned latencyCycles) {
    ++numCommitted_;
    ++statCommitted_;
    state_.pc = nextPc;
    eventQueue().schedule(stepEvent_, clockEdge(latencyCycles));
}

bool SimpleCore::recvInstResp(PacketPtr& pkt) {
    std::memcpy(lineData_.data(), pkt->constData(), kLineBytes);
    lineAddr_ = pkt->addr();
    lineValid_ = true;
    fetchPending_ = false;
    pkt.reset();
    if (!stepEvent_.scheduled()) eventQueue().schedule(stepEvent_, clockEdge(1));
    return true;
}

bool SimpleCore::recvDataResp(PacketPtr& pkt) {
    dataPending_ = false;
    std::uint64_t nextPc = state_.pc + isa::kInstrBytes;
    if (memInstr_.isLoad()) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, pkt->constData(), pkt->size());
        state_.write(memInstr_.rd, isa::extendLoad(memInstr_, raw));
    }
    pkt.reset();
    finishInstr(nextPc, params_.execLatency);
    return true;
}

void SimpleCore::retryFetch() {
    fetchBlocked_ = false;
    if (!stepEvent_.scheduled() && !halted_) eventQueue().schedule(stepEvent_, clockEdge(1));
}

void SimpleCore::retryData() {
    dataBlocked_ = false;
    if (blockedPkt_ != nullptr) {
        if (!dport_.sendTimingReq(blockedPkt_)) {
            dataBlocked_ = true;
            return;
        }
        dataPending_ = true;
    }
}

}  // namespace g5r
