#include "cpu/ooo_core.hh"

#include <algorithm>

namespace g5r {

using isa::Instr;
using isa::Opcode;

OooCore::OooCore(Simulation& sim, std::string objName, const OooCoreParams& params,
                 std::uint64_t entryPc)
    : ClockedObject(sim, std::move(objName), params.clockPeriod),
      params_(params),
      iport_(name() + ".icache_port", *this),
      dport_(name() + ".dcache_port", *this),
      tickEvent_([this] { tick(); }, name() + ".tick"),
      fetchPc_(entryPc),
      statCommitted_(stats_.scalar("committedInsts", "instructions committed")),
      statCycles_(stats_.scalar("numCycles", "core cycles (including sleep)")),
      statMispredicts_(stats_.scalar("branchMispredicts", "control mispredictions")),
      statBranches_(stats_.scalar("branches", "conditional branches committed")),
      statSquashed_(stats_.scalar("squashedInsts", "instructions squashed")),
      statLoads_(stats_.scalar("loads", "loads committed")),
      statStores_(stats_.scalar("stores", "stores committed")),
      statStlForwards_(stats_.scalar("stlForwards", "store-to-load forwards")),
      statRobFullStalls_(stats_.scalar("robFullStalls", "rename stalled: ROB full")),
      statIqFullStalls_(stats_.scalar("iqFullStalls", "rename stalled: IQ full")),
      statLsqFullStalls_(stats_.scalar("lsqFullStalls", "rename stalled: LDQ/STQ full")),
      statSleepCycles_(stats_.scalar("sleepCycles", "cycles spent in sleep syscalls")) {
    rat_.fill(kNoProducer);
    stats_.formula("ipc", "committed instructions per cycle", [this] {
        return numCycles_ > 0 ? static_cast<double>(numCommitted_) /
                                    static_cast<double>(numCycles_)
                              : 0.0;
    });
}

OooCore::~OooCore() = default;

void OooCore::startup() {
    eventQueue().schedule(tickEvent_, clockEdge());
}

void OooCore::scheduleNextCycle() {
    if (!halted_ && !tickEvent_.scheduled()) {
        eventQueue().schedule(tickEvent_, clockEdge(1));
    }
}

void OooCore::haltCore() {
    halted_ = true;
    if (exitCallback_) exitCallback_();
}

void OooCore::tick() {
    if (halted_) return;

    if (curTick() < sleepUntil_) {
        // Doze: skip ahead to the wake deadline. Cycle accounting happens at
        // wake (and live via cyclesRetired()) so time-based statistics stay
        // accurate while asleep.
        if (!dozing_) {
            dozing_ = true;
            dozeFromTick_ = curTick();
        }
        eventQueue().schedule(tickEvent_, sleepUntil_);
        return;
    }
    if (dozing_) {
        dozing_ = false;
        const Cycles skipped = (curTick() - dozeFromTick_) / clockPeriod();
        numCycles_ += skipped;
        statCycles_ += static_cast<double>(skipped);
        statSleepCycles_ += static_cast<double>(skipped);
        cycle_ += skipped;
    }

    commitStage();
    if (halted_) return;
    completeStage();
    issueStage();
    renameStage();
    fetchStage();
    drainStoreBuffer();

    ++cycle_;
    ++numCycles_;
    ++statCycles_;
    scheduleNextCycle();
}

// --------------------------------------------------------------- helpers --

OooCore::RobEntry* OooCore::findRob(Seq seq) {
    // The ROB is seq-sorted; binary search.
    auto it = std::lower_bound(rob_.begin(), rob_.end(), seq,
                               [](const RobEntry& e, Seq s) { return e.seq < s; });
    return (it != rob_.end() && it->seq == seq) ? &*it : nullptr;
}

bool OooCore::operandReady(Seq producer) const {
    if (producer == kNoProducer) return true;
    const RobEntry* e = const_cast<OooCore*>(this)->findRob(producer);
    return e == nullptr /* already committed */ || e->completed;
}

std::uint64_t OooCore::operandValue(unsigned archReg, Seq producer) const {
    if (producer != kNoProducer) {
        const RobEntry* e = const_cast<OooCore*>(this)->findRob(producer);
        if (e != nullptr) {
            simAssert(e->completed, "operand read before producer completed");
            return e->result;
        }
    }
    return archState_.read(archReg);
}

unsigned OooCore::executionLatency(const Instr& in) const {
    switch (in.op) {
    case Opcode::kMul: return params_.mulLatency;
    case Opcode::kDiv: case Opcode::kRem: return params_.divLatency;
    default: return 1;
    }
}

// ---------------------------------------------------------------- commit --

void OooCore::commitStage() {
    unsigned committed = 0;
    // One pulse per commit lane used this cycle (the paper wires four commit
    // event signals so up to four commits/cycle are countable by the PMU).
    const auto flushPulses = [&] {
        if (eventBus_ == nullptr || committed == 0) return;
        if (eventSpreadLanes_) {
            for (unsigned lane = 0; lane < committed && lane < 4; ++lane) {
                eventBus_->pulse(eventCommitLine_ + lane);
            }
        } else {
            eventBus_->pulse(eventCommitLine_, committed);
        }
    };

    while (committed < params_.commitWidth && !rob_.empty()) {
        RobEntry& head = rob_.front();
        if (!head.completed) break;

        // Program termination waits for every committed store to drain, so
        // all architectural memory effects are visible at exit.
        const bool terminates =
            head.instr.isHalt() ||
            (head.instr.isSyscall() &&
             static_cast<isa::Syscall>(archState_.read(17)) == isa::Syscall::kExit);
        if (terminates && (!storeBuffer_.empty() || !storesInFlight_.empty())) break;

        if (head.instr.isStore()) {
            if (storeBuffer_.size() >= params_.storeBufferEntries) break;
            simAssert(!stq_.empty() && stq_.front().seq == head.seq,
                      "STQ out of sync with ROB");
            const StqEntry& st = stq_.front();
            storeBuffer_.push_back(StoreBufferEntry{st.addr, st.size, st.data, false});
            stq_.pop_front();
            ++statStores_;
        } else if (head.instr.isLoad()) {
            simAssert(!ldq_.empty() && ldq_.front().seq == head.seq,
                      "LDQ out of sync with ROB");
            ldq_.pop_front();
            ++statLoads_;
        } else if (head.instr.isSyscall()) {
            commitSyscall(head);
            if (halted_) {  // Exit syscall: it still counts as committed.
                ++committed;
                ++numCommitted_;
                ++statCommitted_;
                flushPulses();
                return;
            }
        } else if (head.instr.isHalt()) {
            ++committed;
            ++numCommitted_;
            ++statCommitted_;
            flushPulses();
            haltCore();
            return;
        }

        if (head.instr.isBranch()) ++statBranches_;
        if (head.instr.writesRd()) {
            archState_.write(head.instr.rd, head.result);
            if (rat_[head.instr.rd] == head.seq) rat_[head.instr.rd] = kNoProducer;
        }

        rob_.pop_front();
        ++committed;
        ++numCommitted_;
        ++statCommitted_;

        if (sleepUntil_ > curTick()) break;  // Sleep begins now.
    }
    flushPulses();
}

void OooCore::commitSyscall(const RobEntry& rob) {
    const auto num = static_cast<isa::Syscall>(archState_.read(17));
    switch (num) {
    case isa::Syscall::kExit:
        haltCore();  // The caller accounts the committed instruction.
        return;
    case isa::Syscall::kSleepNs:
        sleepUntil_ = curTick() + archState_.read(10) * 1000;  // ns -> ticks.
        return;
    case isa::Syscall::kPrintChar:
        console_.push_back(static_cast<char>(archState_.read(10)));
        return;
    case isa::Syscall::kPrintInt:
        console_ += std::to_string(static_cast<std::int64_t>(archState_.read(10)));
        return;
    }
    panicStream("unknown syscall " + std::to_string(archState_.read(17)));
}

// -------------------------------------------------------------- complete --

void OooCore::completeStage() {
    // Oldest-first so a misprediction squash drops younger completions.
    std::sort(completions_.begin(), completions_.end(),
              [](const Completion& a, const Completion& b) { return a.seq < b.seq; });

    std::vector<Completion> remaining;
    remaining.reserve(completions_.size());
    bool squashed = false;
    for (auto& c : completions_) {
        if (c.cycle > cycle_) {
            remaining.push_back(c);
            continue;
        }
        RobEntry* rob = findRob(c.seq);
        if (rob == nullptr) continue;  // Squashed while in flight.
        rob->completed = true;

        if (rob->instr.isControl() && rob->actualNext != rob->predictedNext && !squashed) {
            ++statMispredicts_;
            squashAfter(rob->seq, rob->actualNext);
            squashed = true;  // Younger completions vanish with the squash.
        }
    }
    // Keep only completions that survived any squash.
    if (squashed) {
        std::erase_if(remaining, [this](const Completion& c) { return findRob(c.seq) == nullptr; });
    }
    completions_ = std::move(remaining);
}

void OooCore::squashAfter(Seq seq, std::uint64_t newFetchPc) {
    std::size_t squashCount = 0;
    while (!rob_.empty() && rob_.back().seq > seq) {
        rob_.pop_back();
        ++squashCount;
    }
    std::erase_if(iq_, [seq](Seq s) { return s > seq; });
    while (!ldq_.empty() && ldq_.back().seq > seq) ldq_.pop_back();
    while (!stq_.empty() && stq_.back().seq > seq) stq_.pop_back();
    std::erase_if(completions_, [seq](const Completion& c) { return c.seq > seq; });
    for (auto it = loadsInFlight_.begin(); it != loadsInFlight_.end();) {
        it = (it->second > seq) ? loadsInFlight_.erase(it) : std::next(it);
    }

    squashCount += fetchQueue_.size();
    fetchQueue_.clear();
    ++fetchEpoch_;  // In-flight line fetches become stale (instruction bytes
                    // already buffered stay valid; code is not self-modifying).
    fetchPc_ = newFetchPc;
    statSquashed_ += static_cast<double>(squashCount);

    repairRatAfterSquash();
}

void OooCore::repairRatAfterSquash() {
    rat_.fill(kNoProducer);
    for (const RobEntry& e : rob_) {
        if (e.instr.writesRd()) rat_[e.instr.rd] = e.seq;
    }
}

// ----------------------------------------------------------------- issue --

void OooCore::executeInstr(RobEntry& rob) {
    const Instr& in = rob.instr;
    const std::uint64_t v1 = operandValue(in.rs1, rob.producer1);
    const std::uint64_t v2 = operandValue(in.rs2, rob.producer2);

    if (in.isBranch()) {
        const bool taken = isa::branchTaken(in, v1, v2);
        rob.actualNext = taken ? isa::controlTarget(in, rob.pc, 0)
                               : rob.pc + isa::kInstrBytes;
        bpred_.updateDirection(rob.pc, taken);
    } else if (in.op == Opcode::kJal) {
        rob.result = rob.pc + isa::kInstrBytes;
        rob.actualNext = isa::controlTarget(in, rob.pc, 0);
    } else if (in.op == Opcode::kJalr) {
        rob.result = rob.pc + isa::kInstrBytes;
        rob.actualNext = isa::controlTarget(in, rob.pc, v1);
        bpred_.updateIndirect(rob.pc, rob.actualNext);
    } else if (in.op == Opcode::kRdCycle) {
        rob.result = cycle_;
    } else if (in.isSyscall() || in.isHalt()) {
        // Effects applied at commit.
    } else {
        rob.result = isa::aluResult(in, v1, v2);
    }
}

bool OooCore::tryIssueLoad(RobEntry& rob, LdqEntry& ldq) {
    // Device registers are strongly ordered: only the oldest instruction may
    // read them, so the access is non-speculative and sees current state.
    for (const AddrRange& range : params_.stronglyOrdered) {
        if (range.contains(ldq.addr)) {
            if (rob_.empty() || rob_.front().seq != rob.seq) return false;
            break;
        }
    }

    // Memory disambiguation: conservative, no speculation. Walk older
    // stores youngest-first; the first overlap decides.
    for (auto it = stq_.rbegin(); it != stq_.rend(); ++it) {
        if (it->seq > rob.seq) continue;
        if (!it->addrReady) return false;  // Unknown older address: wait.
        const bool overlap = it->addr < ldq.addr + ldq.size && ldq.addr < it->addr + it->size;
        if (!overlap) continue;
        const bool covers = it->addr <= ldq.addr && ldq.addr + ldq.size <= it->addr + it->size;
        if (!covers) return false;  // Partial overlap: wait for drain.
        const std::uint64_t shifted = it->data >> ((ldq.addr - it->addr) * 8);
        const std::uint64_t mask =
            ldq.size >= 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (ldq.size * 8)) - 1);
        rob.result = isa::extendLoad(rob.instr, shifted & mask);
        ++statStlForwards_;
        ldq.done = true;
        completions_.push_back({cycle_ + 1, rob.seq});
        return true;
    }
    // Committed-but-undrained stores in the store buffer (all older).
    for (auto it = storeBuffer_.rbegin(); it != storeBuffer_.rend(); ++it) {
        const bool overlap = it->addr < ldq.addr + ldq.size && ldq.addr < it->addr + it->size;
        if (!overlap) continue;
        const bool covers = it->addr <= ldq.addr && ldq.addr + ldq.size <= it->addr + it->size;
        if (!covers) return false;
        const std::uint64_t shifted = it->data >> ((ldq.addr - it->addr) * 8);
        const std::uint64_t mask =
            ldq.size >= 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (ldq.size * 8)) - 1);
        rob.result = isa::extendLoad(rob.instr, shifted & mask);
        ++statStlForwards_;
        ldq.done = true;
        completions_.push_back({cycle_ + 1, rob.seq});
        return true;
    }

    // Off to the D-cache.
    if (dcacheBlocked_) return false;
    auto pkt = makeReadPacket(ldq.addr, ldq.size);
    const std::uint64_t id = pkt->id();
    if (!dport_.sendTimingReq(pkt)) {
        dcacheBlocked_ = true;
        return false;
    }
    loadsInFlight_[id] = rob.seq;
    return true;
}

void OooCore::issueStage() {
    unsigned issued = 0;
    unsigned memIssued = 0;
    std::vector<Seq> survivors;
    survivors.reserve(iq_.size());

    for (const Seq seq : iq_) {
        if (issued >= params_.width) {
            survivors.push_back(seq);
            continue;
        }
        RobEntry* rob = findRob(seq);
        simAssert(rob != nullptr, "IQ entry with no ROB entry");
        if (!operandReady(rob->producer1) || !operandReady(rob->producer2)) {
            survivors.push_back(seq);
            continue;
        }

        if (rob->instr.isLoad()) {
            auto ldqIt = std::find_if(ldq_.begin(), ldq_.end(),
                                      [seq](const LdqEntry& e) { return e.seq == seq; });
            simAssert(ldqIt != ldq_.end(), "load missing from LDQ");
            if (!ldqIt->addrReady) {
                ldqIt->addr = isa::effectiveAddr(rob->instr,
                                                 operandValue(rob->instr.rs1, rob->producer1));
                ldqIt->size = rob->instr.memBytes();
                ldqIt->addrReady = true;
            }
            if (memIssued >= params_.memIssuePerCycle || !tryIssueLoad(*rob, *ldqIt)) {
                survivors.push_back(seq);
                continue;
            }
            ++memIssued;
        } else if (rob->instr.isStore()) {
            auto stqIt = std::find_if(stq_.begin(), stq_.end(),
                                      [seq](const StqEntry& e) { return e.seq == seq; });
            simAssert(stqIt != stq_.end(), "store missing from STQ");
            stqIt->addr = isa::effectiveAddr(rob->instr,
                                             operandValue(rob->instr.rs1, rob->producer1));
            stqIt->size = rob->instr.memBytes();
            stqIt->data = operandValue(rob->instr.rs2, rob->producer2);
            stqIt->addrReady = true;
            completions_.push_back({cycle_ + 1, seq});
        } else {
            executeInstr(*rob);
            completions_.push_back({cycle_ + executionLatency(rob->instr), seq});
        }

        rob->issued = true;
        ++issued;
    }
    iq_ = std::move(survivors);
}

// ---------------------------------------------------------------- rename --

void OooCore::renameStage() {
    unsigned renamed = 0;
    while (renamed < params_.width && !fetchQueue_.empty()) {
        const DynInstr& dyn = fetchQueue_.front();
        if (dyn.readyCycle > cycle_) break;

        if (rob_.size() >= params_.robEntries) {
            ++statRobFullStalls_;
            break;
        }
        if (iq_.size() >= params_.iqEntries) {
            ++statIqFullStalls_;
            break;
        }
        if (dyn.instr.isLoad() && ldq_.size() >= params_.ldqEntries) {
            ++statLsqFullStalls_;
            break;
        }
        if (dyn.instr.isStore() && stq_.size() >= params_.stqEntries) {
            ++statLsqFullStalls_;
            break;
        }

        RobEntry rob;
        rob.instr = dyn.instr;
        rob.pc = dyn.pc;
        rob.seq = nextSeq_++;
        rob.predictedNext = dyn.predictedNext;

        // Capture operand producers per operand usage.
        const Instr& in = dyn.instr;
        const bool readsRs1 = !(in.op == Opcode::kLui || in.op == Opcode::kJal ||
                                in.isSyscall() || in.isHalt() || in.op == Opcode::kRdCycle);
        const bool readsRs2 = in.isStore() || in.isBranch() ||
                              (!in.isMem() && !in.isControl() && !in.isSyscall() &&
                               !in.isHalt() && in.op != Opcode::kRdCycle &&
                               in.op < Opcode::kAddi);
        if (readsRs1 && in.rs1 != 0) rob.producer1 = rat_[in.rs1];
        if (readsRs2 && in.rs2 != 0) rob.producer2 = rat_[in.rs2];

        if (in.writesRd() && in.rd != 0) rat_[in.rd] = rob.seq;

        if (in.isLoad()) ldq_.push_back(LdqEntry{rob.seq, 0, 0, false, false});
        if (in.isStore()) stq_.push_back(StqEntry{rob.seq, 0, 0, 0, false});

        iq_.push_back(rob.seq);
        rob_.push_back(std::move(rob));
        fetchQueue_.pop_front();
        ++renamed;
    }
}

// ----------------------------------------------------------------- fetch --

OooCore::FetchLine* OooCore::findFetchLine(std::uint64_t lineAddr) {
    for (auto& fl : fetchLines_) {
        if (fl.valid && fl.addr == lineAddr) {
            fl.lastUsed = ++fetchLineLru_;
            return &fl;
        }
    }
    return nullptr;
}

void OooCore::requestFetchLine(std::uint64_t lineAddr) {
    if (icacheBlocked_) return;
    if (fetchAddrPending_.count(lineAddr) > 0) return;
    if (fetchesInFlight_.size() >= 2) return;  // Demand line + one prefetch.
    auto pkt = makeReadPacket(lineAddr, kLineBytes);
    const std::uint64_t id = pkt->id();
    if (!iport_.sendTimingReq(pkt)) {
        icacheBlocked_ = true;
        return;
    }
    fetchesInFlight_[id] = fetchEpoch_;
    ++fetchAddrPending_[lineAddr];
}

void OooCore::fetchStage() {
    const std::uint64_t lineAddr = fetchPc_ & ~static_cast<std::uint64_t>(kLineBytes - 1);

    FetchLine* line = findFetchLine(lineAddr);
    if (line == nullptr) {
        requestFetchLine(lineAddr);
        return;
    }
    // Next-line prefetch keeps sequential fetch from stalling on every
    // line boundary.
    if (findFetchLine(lineAddr + kLineBytes) == nullptr) {
        requestFetchLine(lineAddr + kLineBytes);
    }

    constexpr std::size_t kFetchQueueCap = 24;
    for (unsigned w = 0; w < params_.width; ++w) {
        if (fetchQueue_.size() >= kFetchQueueCap) break;
        const std::uint64_t pc = fetchPc_;
        if ((pc & ~static_cast<std::uint64_t>(kLineBytes - 1)) != lineAddr) break;

        std::uint64_t raw = 0;
        std::memcpy(&raw, line->data.data() + (pc - lineAddr), sizeof(raw));
        const Instr in = isa::decode(raw);

        DynInstr dyn;
        dyn.instr = in;
        dyn.pc = pc;
        dyn.readyCycle = cycle_ + params_.frontendDepth;

        std::uint64_t next = pc + isa::kInstrBytes;
        bool redirect = false;
        if (in.op == Opcode::kJal) {
            next = isa::controlTarget(in, pc, 0);
            redirect = true;
        } else if (in.isBranch() && bpred_.predictTaken(pc)) {
            next = isa::controlTarget(in, pc, 0);
            redirect = true;
        } else if (in.op == Opcode::kJalr) {
            const std::uint64_t btbTarget = bpred_.predictIndirect(pc);
            if (btbTarget != 0) {
                next = btbTarget;
                redirect = true;
            }
        }
        dyn.predictedNext = next;
        fetchQueue_.push_back(dyn);
        if (in.isHalt()) {
            // Park fetch on the HALT instead of running off the end of the
            // program; a squash redirect restarts fetch elsewhere.
            break;
        }
        fetchPc_ = next;
        if (redirect) break;  // One taken control transfer per fetch cycle.
    }
}

bool OooCore::recvIcacheResp(PacketPtr& pkt) {
    const auto it = fetchesInFlight_.find(pkt->id());
    simAssert(it != fetchesInFlight_.end(), "unexpected icache response");
    const bool stale = it->second != fetchEpoch_;
    fetchesInFlight_.erase(it);
    if (auto pendIt = fetchAddrPending_.find(pkt->addr()); pendIt != fetchAddrPending_.end()) {
        if (--pendIt->second == 0) fetchAddrPending_.erase(pendIt);
    }
    if (!stale) {
        // Install into the LRU fetch-line slot.
        FetchLine* victim = &fetchLines_[0];
        for (auto& fl : fetchLines_) {
            if (!fl.valid) {
                victim = &fl;
                break;
            }
            if (fl.lastUsed < victim->lastUsed) victim = &fl;
        }
        victim->addr = pkt->addr();
        victim->valid = true;
        victim->lastUsed = ++fetchLineLru_;
        std::memcpy(victim->data.data(), pkt->constData(), kLineBytes);
    }
    pkt.reset();
    return true;
}

// ----------------------------------------------------------- memory side --

void OooCore::drainStoreBuffer() {
    constexpr unsigned kMaxOutstandingStores = 4;
    unsigned outstanding = 0;
    for (const auto& sb : storeBuffer_) {
        if (sb.issued) ++outstanding;
    }
    for (auto& sb : storeBuffer_) {
        if (sb.issued) continue;
        if (outstanding >= kMaxOutstandingStores || dcacheBlocked_) break;
        auto pkt = makeWritePacket(sb.addr, sb.size);
        std::memcpy(pkt->data(), &sb.data, sb.size);
        const std::uint64_t id = pkt->id();
        if (!dport_.sendTimingReq(pkt)) {
            dcacheBlocked_ = true;
            break;
        }
        storesInFlight_[id] = sb.addr;
        sb.issued = true;
        ++outstanding;
    }
}

bool OooCore::recvDcacheResp(PacketPtr& pkt) {
    if (pkt->cmd() == MemCmd::kWriteResp) {
        const auto it = storesInFlight_.find(pkt->id());
        simAssert(it != storesInFlight_.end(), "unexpected write ack");
        const Addr addr = it->second;
        storesInFlight_.erase(it);
        // Retire the oldest issued store-buffer entry for this address.
        const auto sbIt = std::find_if(
            storeBuffer_.begin(), storeBuffer_.end(),
            [addr](const StoreBufferEntry& e) { return e.issued && e.addr == addr; });
        simAssert(sbIt != storeBuffer_.end(), "write ack with no store-buffer entry");
        storeBuffer_.erase(sbIt);
        pkt.reset();
        return true;
    }

    const auto it = loadsInFlight_.find(pkt->id());
    if (it == loadsInFlight_.end()) {
        pkt.reset();  // Load was squashed while in flight.
        return true;
    }
    const Seq seq = it->second;
    loadsInFlight_.erase(it);

    RobEntry* rob = findRob(seq);
    simAssert(rob != nullptr, "load response for unknown ROB entry");
    std::uint64_t raw = 0;
    std::memcpy(&raw, pkt->constData(), pkt->size());
    rob->result = isa::extendLoad(rob->instr, raw);
    rob->completed = true;

    const auto ldqIt = std::find_if(ldq_.begin(), ldq_.end(),
                                    [seq](const LdqEntry& e) { return e.seq == seq; });
    if (ldqIt != ldq_.end()) ldqIt->done = true;
    pkt.reset();
    return true;
}

}  // namespace g5r
