// Pure instruction semantics shared by the functional core (golden model)
// and the timing cores' execute stages. Keeping these as free functions
// guarantees that the OoO pipeline and the functional simulator can never
// disagree about what an instruction computes.
#pragma once

#include <array>
#include <cstdint>

#include "cpu/isa.hh"
#include "sim/logging.hh"

namespace g5r::isa {

/// Architectural register state. x0 reads as zero and ignores writes.
struct ArchState {
    std::array<std::uint64_t, kNumRegs> regs{};
    std::uint64_t pc = 0;

    std::uint64_t read(unsigned r) const { return r == 0 ? 0 : regs[r]; }
    void write(unsigned r, std::uint64_t v) {
        if (r != 0) regs[r] = v;
    }
};

/// Result of an ALU-class instruction given resolved operands. `op2` is the
/// second register for R-type ops and ignored for immediates.
inline std::uint64_t aluResult(const Instr& in, std::uint64_t rs1, std::uint64_t rs2) {
    const auto imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
    const auto s1 = static_cast<std::int64_t>(rs1);
    const auto s2 = static_cast<std::int64_t>(rs2);
    switch (in.op) {
    case Opcode::kAdd: return rs1 + rs2;
    case Opcode::kSub: return rs1 - rs2;
    case Opcode::kAnd: return rs1 & rs2;
    case Opcode::kOr: return rs1 | rs2;
    case Opcode::kXor: return rs1 ^ rs2;
    case Opcode::kSll: return rs1 << (rs2 & 63);
    case Opcode::kSrl: return rs1 >> (rs2 & 63);
    case Opcode::kSra: return static_cast<std::uint64_t>(s1 >> (rs2 & 63));
    case Opcode::kSlt: return s1 < s2 ? 1 : 0;
    case Opcode::kSltu: return rs1 < rs2 ? 1 : 0;
    case Opcode::kMul: return rs1 * rs2;
    case Opcode::kDiv: return rs2 == 0 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(s1 / s2);
    case Opcode::kRem: return rs2 == 0 ? rs1 : static_cast<std::uint64_t>(s1 % s2);
    case Opcode::kAddi: return rs1 + imm;
    case Opcode::kAndi: return rs1 & imm;
    case Opcode::kOri: return rs1 | imm;
    case Opcode::kXori: return rs1 ^ imm;
    case Opcode::kSlli: return rs1 << (in.imm & 63);
    case Opcode::kSrli: return rs1 >> (in.imm & 63);
    case Opcode::kSrai: return static_cast<std::uint64_t>(s1 >> (in.imm & 63));
    case Opcode::kSlti: return s1 < static_cast<std::int64_t>(imm) ? 1 : 0;
    case Opcode::kLui: return imm << 12;
    default: panic("aluResult on a non-ALU instruction");
    }
}

/// Branch condition evaluation.
inline bool branchTaken(const Instr& in, std::uint64_t rs1, std::uint64_t rs2) {
    const auto s1 = static_cast<std::int64_t>(rs1);
    const auto s2 = static_cast<std::int64_t>(rs2);
    switch (in.op) {
    case Opcode::kBeq: return rs1 == rs2;
    case Opcode::kBne: return rs1 != rs2;
    case Opcode::kBlt: return s1 < s2;
    case Opcode::kBge: return s1 >= s2;
    case Opcode::kBltu: return rs1 < rs2;
    case Opcode::kBgeu: return rs1 >= rs2;
    default: panic("branchTaken on a non-branch");
    }
}

/// Target of a control-flow instruction (branches/JAL: pc-relative; JALR:
/// register-indirect).
inline std::uint64_t controlTarget(const Instr& in, std::uint64_t pc, std::uint64_t rs1) {
    if (in.op == Opcode::kJalr) {
        return rs1 + static_cast<std::int64_t>(in.imm);
    }
    return pc + static_cast<std::int64_t>(in.imm);
}

/// Effective address of a memory instruction.
inline std::uint64_t effectiveAddr(const Instr& in, std::uint64_t rs1) {
    return rs1 + static_cast<std::int64_t>(in.imm);
}

/// Sign-extend a loaded value according to the load width.
inline std::uint64_t extendLoad(const Instr& in, std::uint64_t raw) {
    switch (in.op) {
    case Opcode::kLd: return raw;
    case Opcode::kLw: return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(static_cast<std::uint32_t>(raw))));
    case Opcode::kLb: return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int8_t>(static_cast<std::uint8_t>(raw))));
    default: panic("extendLoad on a non-load");
    }
}

}  // namespace g5r::isa
