// SimpleCore: a blocking in-order timing core.
//
// gem5 ships multiple CPU models ("in-order and out-of-order core models");
// this is the in-order one: one instruction at a time, memory operations
// block until their response returns, taken control flow pays a fixed
// redirect penalty. It shares the instruction semantics (exec.hh) and the
// syscall surface with the OoO core, so the same programs run on either —
// the core-model ablation bench quantifies the difference.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "cpu/exec.hh"
#include "cpu/isa.hh"
#include "mem/port.hh"
#include "sim/clocked.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace g5r {

struct SimpleCoreParams {
    Tick clockPeriod = periodFromGHz(2);
    unsigned execLatency = 1;      ///< Cycles per non-memory instruction.
    unsigned mulLatency = 3;
    unsigned divLatency = 12;
    unsigned branchPenalty = 2;    ///< Extra cycles on taken control flow.
};

class SimpleCore : public ClockedObject {
public:
    SimpleCore(Simulation& sim, std::string name, const SimpleCoreParams& params,
               std::uint64_t entryPc);

    RequestPort& icachePort() { return iport_; }
    RequestPort& dcachePort() { return dport_; }
    void setExitCallback(std::function<void()> cb) { exitCallback_ = std::move(cb); }

    void startup() override;

    bool halted() const { return halted_; }
    std::uint64_t committedInstructions() const { return numCommitted_; }
    std::uint64_t cyclesRetired() const { return curTick() / clockPeriod(); }
    const std::string& consoleOutput() const { return console_; }
    std::uint64_t archReg(unsigned idx) const { return state_.read(idx); }

private:
    class IPort final : public RequestPort {
    public:
        IPort(std::string n, SimpleCore& c) : RequestPort(std::move(n)), core_(c) {}
        bool recvTimingResp(PacketPtr& pkt) override { return core_.recvInstResp(pkt); }
        void recvReqRetry() override { core_.retryFetch(); }

    private:
        SimpleCore& core_;
    };

    class DPort final : public RequestPort {
    public:
        DPort(std::string n, SimpleCore& c) : RequestPort(std::move(n)), core_(c) {}
        bool recvTimingResp(PacketPtr& pkt) override { return core_.recvDataResp(pkt); }
        void recvReqRetry() override { core_.retryData(); }

    private:
        SimpleCore& core_;
    };

    static constexpr unsigned kLineBytes = 64;

    void step();                  ///< Fetch-or-execute the next instruction.
    void finishInstr(std::uint64_t nextPc, unsigned latencyCycles);
    void execute(const isa::Instr& in);
    void doSyscall();
    bool recvInstResp(PacketPtr& pkt);
    bool recvDataResp(PacketPtr& pkt);
    void retryFetch();
    void retryData();
    void haltCore();

    SimpleCoreParams params_;
    IPort iport_;
    DPort dport_;
    CallbackEvent stepEvent_;
    std::function<void()> exitCallback_;

    isa::ArchState state_;
    bool halted_ = false;
    std::string console_;
    std::uint64_t numCommitted_ = 0;

    // Fetch-line buffer.
    std::uint64_t lineAddr_ = ~std::uint64_t{0};
    std::array<std::uint8_t, kLineBytes> lineData_{};
    bool lineValid_ = false;
    bool fetchPending_ = false;
    bool fetchBlocked_ = false;

    // In-flight data access.
    isa::Instr memInstr_{};
    bool dataPending_ = false;
    bool dataBlocked_ = false;
    PacketPtr blockedPkt_;

    stats::Scalar& statCommitted_;
    stats::Scalar& statLoads_;
    stats::Scalar& statStores_;
    stats::Formula& statIpc_;
};

}  // namespace g5r
