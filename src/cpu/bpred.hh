// Branch prediction: a bimodal 2-bit-counter direction predictor plus a
// small BTB for indirect (JALR) targets. Direct branch/JAL targets are
// decoded from the instruction bits at fetch, so the BTB is only consulted
// for indirect jumps.
#pragma once

#include <cstdint>
#include <vector>

namespace g5r {

class BranchPredictor {
public:
    explicit BranchPredictor(unsigned tableBits = 12, unsigned btbEntries = 256)
        : counters_(1u << tableBits, 2 /* weakly taken */),
          btb_(btbEntries),
          tableMask_((1u << tableBits) - 1),
          btbMask_(btbEntries - 1) {}

    bool predictTaken(std::uint64_t pc) const {
        return counters_[index(pc)] >= 2;
    }

    /// Predicted target of an indirect jump; 0 when the BTB has no entry.
    std::uint64_t predictIndirect(std::uint64_t pc) const {
        const auto& e = btb_[btbIndex(pc)];
        return e.valid && e.pc == pc ? e.target : 0;
    }

    void updateDirection(std::uint64_t pc, bool taken) {
        auto& c = counters_[index(pc)];
        if (taken && c < 3) ++c;
        if (!taken && c > 0) --c;
    }

    void updateIndirect(std::uint64_t pc, std::uint64_t target) {
        btb_[btbIndex(pc)] = BtbEntry{pc, target, true};
    }

private:
    struct BtbEntry {
        std::uint64_t pc = 0;
        std::uint64_t target = 0;
        bool valid = false;
    };

    std::size_t index(std::uint64_t pc) const { return (pc >> 3) & tableMask_; }
    std::size_t btbIndex(std::uint64_t pc) const { return (pc >> 3) & btbMask_; }

    std::vector<std::uint8_t> counters_;
    std::vector<BtbEntry> btb_;
    std::size_t tableMask_;
    std::size_t btbMask_;
};

}  // namespace g5r
