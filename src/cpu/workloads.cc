#include "cpu/workloads.hh"

#include <sstream>

namespace g5r::workloads {

// Calling convention for all three kernels: a0 = array base (8-byte ints),
// a1 = element count; t-registers scratch, s-registers used freely (the
// benchmark driver keeps nothing live across calls).

std::string selectionSortFunction() {
    return R"(
selectionsort:
  li t0, 0              ; i = 0
sel_outer:
  addi t6, a1, -1
  bge t0, t6, sel_done  ; i >= n-1
  mv t1, t0             ; minIdx = i
  addi t2, t0, 1        ; j = i+1
sel_inner:
  bge t2, a1, sel_swap
  slli t3, t2, 3
  add t3, a0, t3
  ld t4, 0(t3)          ; arr[j]
  slli t5, t1, 3
  add t5, a0, t5
  ld t6, 0(t5)          ; arr[minIdx]
  bge t4, t6, sel_noupd
  mv t1, t2             ; new minimum
sel_noupd:
  addi t2, t2, 1
  j sel_inner
sel_swap:
  slli t3, t0, 3
  add t3, a0, t3
  ld t4, 0(t3)
  slli t5, t1, 3
  add t5, a0, t5
  ld t6, 0(t5)
  sd t6, 0(t3)
  sd t4, 0(t5)
  addi t0, t0, 1
  j sel_outer
sel_done:
  ret
)";
}

std::string bubbleSortFunction() {
    return R"(
bubblesort:
  addi t0, a1, -1       ; limit = n-1
bub_outer:
  blt t0, x0, bub_done
  li t1, 0              ; j = 0
bub_inner:
  bge t1, t0, bub_next
  slli t2, t1, 3
  add t2, a0, t2
  ld t3, 0(t2)          ; arr[j]
  ld t4, 8(t2)          ; arr[j+1]
  ble t3, t4, bub_noswap
  sd t4, 0(t2)
  sd t3, 8(t2)
bub_noswap:
  addi t1, t1, 1
  j bub_inner
bub_next:
  addi t0, t0, -1
  bgt t0, x0, bub_outer
bub_done:
  ret
)";
}

std::string quickSortFunction() {
    // Iterative Lomuto-partition quicksort; (lo, hi) work list kept on the
    // machine stack, s11 marks the empty level.
    return R"(
quicksort:
  li t5, 2
  blt a1, t5, qs_ret    ; n < 2: nothing to sort
  mv s11, sp            ; remember the empty-stack level
  addi t6, a1, -1
  addi sp, sp, -16      ; push (0, n-1)
  sd x0, 0(sp)
  sd t6, 8(sp)
qs_loop:
  beq sp, s11, qs_ret
  ld s0, 0(sp)          ; lo
  ld s1, 8(sp)          ; hi
  addi sp, sp, 16
  bge s0, s1, qs_loop
  slli t0, s1, 3        ; t0 = &arr[hi]
  add t0, a0, t0
  ld s2, 0(t0)          ; pivot = arr[hi]
  addi s3, s0, -1       ; i = lo - 1
  mv s4, s0             ; j = lo
qs_part:
  bge s4, s1, qs_part_done
  slli t1, s4, 3
  add t1, a0, t1
  ld t2, 0(t1)          ; arr[j]
  bgt t2, s2, qs_noswap
  addi s3, s3, 1        ; ++i
  slli t3, s3, 3
  add t3, a0, t3
  ld t4, 0(t3)          ; swap arr[i] <-> arr[j]
  sd t2, 0(t3)
  sd t4, 0(t1)
qs_noswap:
  addi s4, s4, 1
  j qs_part
qs_part_done:
  addi s3, s3, 1        ; p = i + 1
  slli t3, s3, 3
  add t3, a0, t3
  ld t4, 0(t3)          ; swap arr[p] <-> arr[hi]
  ld t2, 0(t0)
  sd t2, 0(t3)
  sd t4, 0(t0)
  addi t1, s3, -1       ; push (lo, p-1) if non-trivial
  bge s0, t1, qs_skip1
  addi sp, sp, -16
  sd s0, 0(sp)
  sd t1, 8(sp)
qs_skip1:
  addi t1, s3, 1        ; push (p+1, hi) if non-trivial
  bge t1, s1, qs_skip2
  addi sp, sp, -16
  sd t1, 0(sp)
  sd s1, 8(sp)
qs_skip2:
  j qs_loop
qs_ret:
  ret
)";
}

std::string sortBenchmarkSource(const SortBenchmarkLayout& layout) {
    std::ostringstream os;
    os << "main:\n"
       << "  li sp, " << layout.stackTop << "\n"
       // Phase 1: quicksort, 10x elements.
       << "  li a0, " << layout.quickBase << "\n"
       << "  li a1, " << layout.quickElems() << "\n"
       << "  call quicksort\n"
       << "  li a0, " << layout.sleepNs << "\n"
       << "  li a7, 1\n  ecall\n"
       // Phase 2: selection sort.
       << "  li a0, " << layout.selBase << "\n"
       << "  li a1, " << layout.baseElems << "\n"
       << "  call selectionsort\n"
       << "  li a0, " << layout.sleepNs << "\n"
       << "  li a7, 1\n  ecall\n"
       // Phase 3: bubble sort.
       << "  li a0, " << layout.bubbleBase << "\n"
       << "  li a1, " << layout.baseElems << "\n"
       << "  call bubblesort\n"
       // Exit.
       << "  li a7, 0\n  ecall\n"
       << "  halt\n"
       << quickSortFunction() << selectionSortFunction() << bubbleSortFunction();
    return os.str();
}

isa::Program sortBenchmarkProgram(const SortBenchmarkLayout& layout) {
    return isa::assemble(sortBenchmarkSource(layout));
}

void populateSortArrays(BackingStore& mem, const SortBenchmarkLayout& layout,
                        std::uint64_t seed) {
    Rng rng{seed};
    auto fill = [&](std::uint64_t base, std::uint64_t elems) {
        for (std::uint64_t i = 0; i < elems; ++i) {
            mem.store<std::uint64_t>(base + 8 * i, rng.below(1'000'000));
        }
    };
    fill(layout.quickBase, layout.quickElems());
    fill(layout.selBase, layout.baseElems);
    fill(layout.bubbleBase, layout.baseElems);
}

bool isSorted(const BackingStore& mem, std::uint64_t base, std::uint64_t elems) {
    for (std::uint64_t i = 1; i < elems; ++i) {
        const auto prev = static_cast<std::int64_t>(mem.load<std::uint64_t>(base + 8 * (i - 1)));
        const auto cur = static_cast<std::int64_t>(mem.load<std::uint64_t>(base + 8 * i));
        if (prev > cur) return false;
    }
    return true;
}

}  // namespace g5r::workloads
