#include "cpu/assembler.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>

namespace g5r::isa {
namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
    throw AsmError("asm line " + std::to_string(lineNo) + ": " + msg);
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

std::string_view stripComment(std::string_view line) {
    const auto pos = line.find_first_of(";#");
    return pos == std::string_view::npos ? line : line.substr(0, pos);
}

/// Split "a, b, c" / "a b c" into trimmed operand tokens.
std::vector<std::string> splitOperands(std::string_view s) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

std::optional<std::uint8_t> parseReg(std::string_view tok) {
    static const std::map<std::string_view, std::uint8_t> kAliases = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},   {"fp", 8},   {"s0", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12},  {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17},  {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22},  {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    if (const auto it = kAliases.find(tok); it != kAliases.end()) return it->second;
    if (tok.size() >= 2 && tok[0] == 'x') {
        unsigned idx = 0;
        const auto res = std::from_chars(tok.data() + 1, tok.data() + tok.size(), idx);
        if (res.ec == std::errc{} && res.ptr == tok.data() + tok.size() && idx < kNumRegs) {
            return static_cast<std::uint8_t>(idx);
        }
    }
    return std::nullopt;
}

std::optional<std::int64_t> parseImm(std::string_view tok) {
    if (tok.empty()) return std::nullopt;
    bool negative = false;
    if (tok[0] == '-' || tok[0] == '+') {
        negative = tok[0] == '-';
        tok.remove_prefix(1);
    }
    int base = 10;
    if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        tok.remove_prefix(2);
    }
    std::int64_t value = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), value, base);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) return std::nullopt;
    return negative ? -value : value;
}

/// "imm(reg)" memory-operand form.
bool parseMemOperand(const std::string& tok, std::int64_t& imm, std::uint8_t& reg) {
    const auto open = tok.find('(');
    const auto close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open) return false;
    const auto immTok = tok.substr(0, open);
    const auto regTok = tok.substr(open + 1, close - open - 1);
    const auto immVal = immTok.empty() ? std::optional<std::int64_t>{0} : parseImm(immTok);
    const auto regVal = parseReg(regTok);
    if (!immVal || !regVal) return false;
    imm = *immVal;
    reg = *regVal;
    return true;
}

struct PendingInstr {
    Instr instr;
    std::string label;  ///< Unresolved pc-relative target ("" if none).
    std::size_t lineNo = 0;
};

}  // namespace

std::uint64_t Program::offsetOf(const std::string& label) const {
    const auto it = labels.find(label);
    if (it == labels.end()) throw AsmError("unknown label: " + label);
    return it->second;
}

Program assemble(std::string_view source) {
    std::vector<PendingInstr> pending;
    std::map<std::string, std::uint64_t> labels;

    std::size_t lineNo = 0;
    std::size_t cursor = 0;
    while (cursor <= source.size()) {
        const auto eol = source.find('\n', cursor);
        std::string_view line = source.substr(
            cursor, eol == std::string_view::npos ? std::string_view::npos : eol - cursor);
        cursor = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
        ++lineNo;

        line = trim(stripComment(line));
        if (line.empty()) continue;

        // Leading labels ("name:") — multiple allowed on one line.
        while (true) {
            const auto colon = line.find(':');
            if (colon == std::string_view::npos) break;
            const auto head = trim(line.substr(0, colon));
            if (head.find_first_of(" \t") != std::string_view::npos) break;  // Not a label.
            if (head.empty()) fail(lineNo, "empty label");
            if (labels.count(std::string{head}) > 0) {
                fail(lineNo, "duplicate label: " + std::string{head});
            }
            labels[std::string{head}] = pending.size() * kInstrBytes;
            line = trim(line.substr(colon + 1));
        }
        if (line.empty()) continue;

        const auto space = line.find_first_of(" \t");
        std::string mnem{line.substr(0, space)};
        std::transform(mnem.begin(), mnem.end(), mnem.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        const auto operands = splitOperands(
            space == std::string_view::npos ? std::string_view{} : line.substr(space));

        auto reg = [&](std::size_t i) -> std::uint8_t {
            if (i >= operands.size()) fail(lineNo, "missing register operand");
            const auto r = parseReg(operands[i]);
            if (!r) fail(lineNo, "bad register: " + operands[i]);
            return *r;
        };
        auto imm32 = [&](std::size_t i) -> std::int32_t {
            if (i >= operands.size()) fail(lineNo, "missing immediate operand");
            const auto v = parseImm(operands[i]);
            if (!v) fail(lineNo, "bad immediate: " + operands[i]);
            if (*v < INT32_MIN || *v > INT32_MAX) fail(lineNo, "immediate out of range");
            return static_cast<std::int32_t>(*v);
        };
        auto emit = [&](const Instr& in, std::string label = {}) {
            pending.push_back(PendingInstr{in, std::move(label), lineNo});
        };
        auto labelOperand = [&](std::size_t i) -> std::string {
            if (i >= operands.size()) fail(lineNo, "missing label operand");
            return operands[i];
        };

        // Pseudo-instructions first.
        if (mnem == "nop") {
            emit({Opcode::kAddi, 0, 0, 0, 0});
            continue;
        }
        if (mnem == "li") {
            // Wide constants expand to lui (bits [12,44)) + ori (bits [0,12)).
            const std::uint8_t rd = reg(0);
            if (operands.size() < 2) fail(lineNo, "missing immediate operand");
            const auto value = parseImm(operands[1]);
            if (!value) fail(lineNo, "bad immediate: " + operands[1]);
            if (*value >= INT32_MIN && *value <= INT32_MAX) {
                emit({Opcode::kAddi, rd, 0, 0, static_cast<std::int32_t>(*value)});
            } else if (*value >= 0 && *value < (std::int64_t{1} << 44)) {
                emit({Opcode::kLui, rd, 0, 0, static_cast<std::int32_t>(*value >> 12)});
                emit({Opcode::kOri, rd, rd, 0, static_cast<std::int32_t>(*value & 0xFFF)});
            } else {
                fail(lineNo, "li immediate out of the 44-bit range");
            }
            continue;
        }
        if (mnem == "mv") {
            emit({Opcode::kAddi, reg(0), reg(1), 0, 0});
            continue;
        }
        if (mnem == "j") {
            emit({Opcode::kJal, 0, 0, 0, 0}, labelOperand(0));
            continue;
        }
        if (mnem == "call") {
            emit({Opcode::kJal, 1, 0, 0, 0}, labelOperand(0));
            continue;
        }
        if (mnem == "ret") {
            emit({Opcode::kJalr, 0, 1, 0, 0});
            continue;
        }
        if (mnem == "ble") {  // ble a,b,L == bge b,a,L
            emit({Opcode::kBge, 0, reg(1), reg(0), 0}, labelOperand(2));
            continue;
        }
        if (mnem == "bgt") {  // bgt a,b,L == blt b,a,L
            emit({Opcode::kBlt, 0, reg(1), reg(0), 0}, labelOperand(2));
            continue;
        }

        const Opcode op = opcodeFromMnemonic(mnem);
        if (op == Opcode::kOpcodeCount) fail(lineNo, "unknown mnemonic: " + mnem);

        Instr in;
        in.op = op;
        switch (op) {
        case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
        case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
        case Opcode::kSlt: case Opcode::kSltu: case Opcode::kMul: case Opcode::kDiv:
        case Opcode::kRem:
            in.rd = reg(0);
            in.rs1 = reg(1);
            in.rs2 = reg(2);
            break;
        case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri: case Opcode::kXori:
        case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai: case Opcode::kSlti:
            in.rd = reg(0);
            in.rs1 = reg(1);
            in.imm = imm32(2);
            break;
        case Opcode::kLui:
            in.rd = reg(0);
            in.imm = imm32(1);
            break;
        case Opcode::kLd: case Opcode::kLw: case Opcode::kLb: {
            in.rd = reg(0);
            std::int64_t imm = 0;
            std::uint8_t base = 0;
            if (operands.size() < 2 || !parseMemOperand(operands[1], imm, base)) {
                fail(lineNo, "expected imm(reg) operand");
            }
            in.rs1 = base;
            in.imm = static_cast<std::int32_t>(imm);
            break;
        }
        case Opcode::kSd: case Opcode::kSw: case Opcode::kSb: {
            in.rs2 = reg(0);  // Value to store.
            std::int64_t imm = 0;
            std::uint8_t base = 0;
            if (operands.size() < 2 || !parseMemOperand(operands[1], imm, base)) {
                fail(lineNo, "expected imm(reg) operand");
            }
            in.rs1 = base;
            in.imm = static_cast<std::int32_t>(imm);
            break;
        }
        case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt: case Opcode::kBge:
        case Opcode::kBltu: case Opcode::kBgeu:
            in.rs1 = reg(0);
            in.rs2 = reg(1);
            emit(in, labelOperand(2));
            continue;
        case Opcode::kJal:
            in.rd = reg(0);
            emit(in, labelOperand(1));
            continue;
        case Opcode::kJalr:
            in.rd = reg(0);
            in.rs1 = reg(1);
            in.imm = operands.size() > 2 ? imm32(2) : 0;
            break;
        case Opcode::kEcall: case Opcode::kHalt:
            break;
        case Opcode::kRdCycle:
            in.rd = reg(0);
            break;
        case Opcode::kOpcodeCount:
            fail(lineNo, "internal: bad opcode");
        }
        emit(in);
    }

    // Second pass: resolve pc-relative labels.
    Program prog;
    prog.labels = labels;
    prog.code.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        Instr in = pending[i].instr;
        if (!pending[i].label.empty()) {
            const auto it = labels.find(pending[i].label);
            if (it == labels.end()) {
                fail(pending[i].lineNo, "unknown label: " + pending[i].label);
            }
            const auto target = static_cast<std::int64_t>(it->second);
            const auto pc = static_cast<std::int64_t>(i * kInstrBytes);
            in.imm = static_cast<std::int32_t>(target - pc);
        }
        prog.code.push_back(encode(in));
    }
    return prog;
}

std::string disassemble(const Instr& in) {
    std::ostringstream os;
    os << mnemonic(in.op);
    if (in.isStore()) {
        os << " x" << +in.rs2 << ", " << in.imm << "(x" << +in.rs1 << ')';
    } else if (in.isLoad()) {
        os << " x" << +in.rd << ", " << in.imm << "(x" << +in.rs1 << ')';
    } else if (in.isBranch()) {
        os << " x" << +in.rs1 << ", x" << +in.rs2 << ", pc" << (in.imm >= 0 ? "+" : "")
           << in.imm;
    } else if (in.op == Opcode::kJal) {
        os << " x" << +in.rd << ", pc" << (in.imm >= 0 ? "+" : "") << in.imm;
    } else if (in.op == Opcode::kJalr) {
        os << " x" << +in.rd << ", x" << +in.rs1 << ", " << in.imm;
    } else if (in.op == Opcode::kRdCycle) {
        os << " x" << +in.rd;
    } else if (!in.isSyscall() && !in.isHalt()) {
        os << " x" << +in.rd << ", x" << +in.rs1;
        if (in.op == Opcode::kLui) {
            os << ", " << in.imm;
        } else {
            os << ", x" << +in.rs2 << ", " << in.imm;
        }
    }
    return os.str();
}

}  // namespace g5r::isa
