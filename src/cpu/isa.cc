#include "cpu/isa.hh"

#include <array>

namespace g5r::isa {
namespace {

constexpr std::array<std::string_view, static_cast<std::size_t>(Opcode::kOpcodeCount)>
    kMnemonics = {
        "add",  "sub",  "and",  "or",   "xor",  "sll",  "srl",  "sra",  "slt",
        "sltu", "mul",  "div",  "rem",  "addi", "andi", "ori",  "xori", "slli",
        "srli", "srai", "slti", "lui",  "ld",   "lw",   "lb",   "sd",   "sw",
        "sb",   "beq",  "bne",  "blt",  "bge",  "bltu", "bgeu", "jal",  "jalr",
        "ecall", "rdcycle", "halt",
};

}  // namespace

std::string_view mnemonic(Opcode op) {
    const auto idx = static_cast<std::size_t>(op);
    return idx < kMnemonics.size() ? kMnemonics[idx] : "???";
}

Opcode opcodeFromMnemonic(std::string_view m) {
    for (std::size_t i = 0; i < kMnemonics.size(); ++i) {
        if (kMnemonics[i] == m) return static_cast<Opcode>(i);
    }
    return Opcode::kOpcodeCount;
}

}  // namespace g5r::isa
