// Workload programs for the full-system experiments.
//
// The Fig. 5 / Table 2 benchmark: QuickSort, SelectionSort and BubbleSort run
// back-to-back with a sleep between phases, exactly as the paper describes
// ("three sorting algorithms ... separated by a 1 ms sleep"). QuickSort gets
// 10x more elements (the paper: "sorts 10x more elements in a fraction of
// the time").
#pragma once

#include <cstdint>
#include <string>

#include "cpu/assembler.hh"
#include "mem/backing_store.hh"
#include "sim/rng.hh"

namespace g5r::workloads {

struct SortBenchmarkLayout {
    std::uint64_t quickBase = 0x100000;   ///< QuickSort array (n = 10 * baseElems).
    std::uint64_t selBase = 0x200000;     ///< SelectionSort array.
    std::uint64_t bubbleBase = 0x300000;  ///< BubbleSort array.
    std::uint64_t stackTop = 0x0F0000;    ///< Grows down; quicksort's (lo,hi) stack.
    std::uint64_t baseElems = 1000;       ///< Selection/Bubble size; Quick = 10x.
    std::uint64_t sleepNs = 1'000'000;    ///< Inter-phase sleep (paper: 1 ms).

    std::uint64_t quickElems() const { return baseElems * 10; }
};

/// Assembly source of the three-kernel benchmark for the given layout.
std::string sortBenchmarkSource(const SortBenchmarkLayout& layout);

/// Assembled program of the benchmark.
isa::Program sortBenchmarkProgram(const SortBenchmarkLayout& layout);

/// Fill the three arrays with deterministic pseudo-random values.
void populateSortArrays(BackingStore& mem, const SortBenchmarkLayout& layout,
                        std::uint64_t seed = 42);

/// True if memory holds a sorted (non-decreasing) int64 array at base.
bool isSorted(const BackingStore& mem, std::uint64_t base, std::uint64_t elems);

/// Standalone single-kernel sources, for unit tests.
std::string quickSortFunction();
std::string selectionSortFunction();
std::string bubbleSortFunction();

}  // namespace g5r::workloads
